package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareBench(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeFile(t, oldPath, `{
		"config": {"events": 1000},
		"pipelineEventsPerSec": 200.0,
		"proxyP99Ms": 8.0,
		"droppedMetric": 3.0
	}`)
	writeFile(t, newPath, `{
		"config": {"events": 1000},
		"pipelineEventsPerSec": 300.0,
		"proxyP99Ms": 6.0,
		"addedMetric": 1.5
	}`)

	var buf bytes.Buffer
	if err := compareBench(&buf, oldPath, newPath, 0); err != nil {
		t.Fatalf("compareBench: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"pipelineEventsPerSec", "+50.0%",
		"proxyP99Ms", "-25.0%",
		"config.events", "+0.0%",
		"droppedMetric", "gone",
		"addedMetric", "new",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareBenchTolerance covers the CI gate: a known-direction metric
// past tolerance fails the compare, movement within tolerance or on
// unknown/config keys does not, and improvements never fail.
func TestCompareBenchTolerance(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	writeFile(t, oldPath, `{
		"config": {"events": 1000},
		"pipelineEventsPerSec": 200.0,
		"proxyP99Ms": 8.0,
		"proxyErrors": 0,
		"mysteryMetric": 10.0
	}`)

	cases := []struct {
		name     string
		newDoc   string
		tol      float64
		wantFail bool
	}{
		{"throughput collapse fails", `{"pipelineEventsPerSec": 100.0}`, 0.2, true},
		{"throughput dip within tolerance passes", `{"pipelineEventsPerSec": 190.0}`, 0.2, false},
		{"latency blowup fails", `{"proxyP99Ms": 20.0}`, 0.2, true},
		{"errors appearing fails", `{"proxyErrors": 3}`, 0.2, true},
		{"improvement passes", `{"pipelineEventsPerSec": 400.0, "proxyP99Ms": 2.0}`, 0.2, false},
		{"unknown metric never gates", `{"mysteryMetric": 1.0}`, 0.2, false},
		{"config shift never gates", `{"config": {"events": 1}}`, 0.2, false},
		{"zero tolerance disables gating", `{"pipelineEventsPerSec": 1.0}`, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newPath := filepath.Join(dir, "new.json")
			writeFile(t, newPath, tc.newDoc)
			var buf bytes.Buffer
			err := compareBench(&buf, oldPath, newPath, tc.tol)
			if tc.wantFail && err == nil {
				t.Errorf("compare passed, want regression failure:\n%s", buf.String())
			}
			if !tc.wantFail && err != nil {
				t.Errorf("compare failed: %v\n%s", err, buf.String())
			}
			if tc.wantFail && err != nil && !strings.Contains(err.Error(), "regressed beyond tolerance") {
				t.Errorf("unexpected error text: %v", err)
			}
		})
	}
}

func TestMetricDirection(t *testing.T) {
	for key, want := range map[string]int{
		"pipelineEventsPerSec": 1,
		"proxyRps":             1,
		"quorumSpeedup":        1,
		"proxyP99Ms":           -1,
		"sequentialWallMs":     -1,
		"proxyErrors":          -1,
		"abortedSiblings":      -1,
		"config.events":        0,
		"config.proxyRps":      0,
		"deliveredFrames":      0,
		"reconfigs":            0,
	} {
		if got := metricDirection(key); got != want {
			t.Errorf("metricDirection(%q) = %d, want %d", key, got, want)
		}
	}
}

func TestFlattenNumbers(t *testing.T) {
	out := make(map[string]float64)
	flattenNumbers("", map[string]any{
		"a": 1.0,
		"b": map[string]any{"c": 2.0, "s": "text"},
		"l": []any{3.0, map[string]any{"d": 4.0}},
	}, out)
	want := map[string]float64{"a": 1, "b.c": 2, "l[0]": 3, "l[1].d": 4}
	if len(out) != len(want) {
		t.Fatalf("flatten = %v, want %v", out, want)
	}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("flatten[%q] = %v, want %v", k, out[k], v)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
