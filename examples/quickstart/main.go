// Quickstart: canary-release a new version of one service in ~60 lines.
//
// Two toy backends stand in for the stable and canary versions; a Bifrost
// proxy routes between them; the engine enacts a two-phase strategy that
// sends 10% of traffic to the canary for two seconds and, if nothing looks
// wrong, promotes it to 100%.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"time"

	"bifrost"
	"bifrost/internal/httpx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	stable := serveVersion("v1")
	canary := serveVersion("v2")
	defer stable.Shutdown(context.Background())
	defer canary.Shutdown(context.Background())

	yaml := fmt.Sprintf(`
name: quickstart
deployment:
  services:
    - service: hello
      versions:
        - name: v1
          endpoint: %s
        - name: v2
          endpoint: %s
strategy:
  phases:
    - phase: canary
      description: 10%% of traffic to v2
      duration: 2s
      routes:
        - route:
            service: hello
            weights: {v1: 90, v2: 10}
      on:
        success: promoted
    - phase: promoted
      routes:
        - route:
            service: hello
            weights: {v2: 100}
`, stable.URL(), canary.URL())

	strategy, err := bifrost.CompileStrategy(yaml)
	if err != nil {
		return err
	}

	proxy, err := bifrost.NewProxy("hello", bifrost.ProxyConfig{})
	if err != nil {
		return err
	}
	defer proxy.Close()
	front, err := httpx.NewServer("127.0.0.1:0", proxy)
	if err != nil {
		return err
	}
	front.Start()
	defer front.Shutdown(context.Background())

	local := bifrost.NewLocalProxies()
	local.Register("hello", proxy)
	eng := bifrost.NewEngine(bifrost.WithLocalProxies(local))
	defer eng.Shutdown()

	run, err := eng.Enact(strategy)
	if err != nil {
		return err
	}
	fmt.Printf("canary running — traffic through %s\n", front.URL())

	// Poke the proxy while the canary phase runs.
	hits := map[string]int{}
	for i := 0; i < 40; i++ {
		resp, err := http.Get(front.URL() + "/")
		if err == nil {
			hits[resp.Header.Get("X-Bifrost-Version")]++
			resp.Body.Close()
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("during canary: %v\n", hits)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	status, err := bifrost.WaitForCompletion(ctx, run)
	if err != nil {
		return err
	}
	fmt.Printf("strategy %s: %s, path:", status.Strategy, status.State)
	for _, tr := range status.Path {
		fmt.Printf(" %s→%s", tr.From, tr.To)
	}
	fmt.Println()

	resp, err := http.Get(front.URL() + "/")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	fmt.Printf("after promotion every request hits: %s\n", resp.Header.Get("X-Bifrost-Version"))
	return nil
}

func serveVersion(name string) *httpx.Server {
	srv, err := httpx.NewServer("127.0.0.1:0", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "hello from %s\n", name)
		}))
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	return srv
}
