// Package clock abstracts time for Bifrost's timer-driven components.
//
// The formal model (paper §3.2) makes check execution "controlled by a timer
// mechanism τ". The engine therefore depends on this Clock interface rather
// than the time package directly, so unit tests can drive the automaton
// through days of simulated rollout in microseconds with a Manual clock.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the time-related operations the engine needs.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTicker returns a ticker that fires every d.
	NewTicker(d time.Duration) Ticker
	// NewTimer returns a one-shot timer that fires after d.
	NewTimer(d time.Duration) Timer
	// After returns a channel that receives the time after d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Ticker matches the subset of *time.Ticker behaviour Bifrost uses.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Timer matches the subset of *time.Timer behaviour Bifrost uses.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

// Real is a Clock backed by the time package. The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

// Manual is a deterministic Clock whose time only moves when Advance is
// called. Timers and tickers fire synchronously inside Advance, in timestamp
// order, which makes timed behaviour fully reproducible in tests.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

var _ Clock = (*Manual)(nil)

// NewManual returns a Manual clock starting at the given instant.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Advance moves the clock forward by d, firing every timer and ticker whose
// deadline falls within the window, in chronological order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	for {
		w := m.earliestDue(target)
		if w == nil {
			break
		}
		m.now = w.deadline
		w.fireLocked(m)
	}
	m.now = target
	m.mu.Unlock()
}

// AdvanceUntilIdle repeatedly advances in steps of d until no timer fires
// during a step, up to max steps. It returns the number of steps taken.
// Useful for "run the strategy to completion" style tests.
func (m *Manual) AdvanceUntilIdle(step time.Duration, maxSteps int) int {
	for i := 0; i < maxSteps; i++ {
		m.mu.Lock()
		pending := len(m.activeWaiters())
		m.mu.Unlock()
		if pending == 0 {
			return i
		}
		m.Advance(step)
	}
	return maxSteps
}

// earliestDue returns the waiter with the earliest deadline ≤ target, or nil.
// Callers must hold mu.
func (m *Manual) earliestDue(target time.Time) *manualWaiter {
	var best *manualWaiter
	for _, w := range m.waiters {
		if w.stopped || w.deadline.After(target) {
			continue
		}
		if best == nil || w.deadline.Before(best.deadline) {
			best = w
		}
	}
	return best
}

func (m *Manual) activeWaiters() []*manualWaiter {
	live := m.waiters[:0]
	for _, w := range m.waiters {
		if !w.stopped {
			live = append(live, w)
		}
	}
	m.waiters = live
	return live
}

// NewTicker implements Clock.
func (m *Manual) NewTicker(d time.Duration) Ticker {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &manualWaiter{
		mu:       &m.mu,
		ch:       make(chan time.Time, 1),
		deadline: m.now.Add(d),
		period:   d,
	}
	m.waiters = append(m.waiters, w)
	return manualTicker{w}
}

// NewTimer implements Clock.
func (m *Manual) NewTimer(d time.Duration) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &manualWaiter{
		mu:       &m.mu,
		ch:       make(chan time.Time, 1),
		deadline: m.now.Add(d),
	}
	m.waiters = append(m.waiters, w)
	return w
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	return m.NewTimer(d).C()
}

// manualTicker adapts manualWaiter's Stop() bool to the Ticker interface.
type manualTicker struct{ *manualWaiter }

// Stop implements Ticker.
func (t manualTicker) Stop() { t.manualWaiter.Stop() }

// manualWaiter is a timer or (when period > 0) ticker on a Manual clock.
type manualWaiter struct {
	mu       *sync.Mutex // the owning Manual clock's mutex
	ch       chan time.Time
	deadline time.Time
	period   time.Duration
	stopped  bool
}

func (w *manualWaiter) C() <-chan time.Time { return w.ch }

func (w *manualWaiter) Stop() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	was := !w.stopped
	w.stopped = true
	return was
}

// fireLocked delivers a tick and reschedules periodic waiters. The Manual
// clock's mutex must be held.
func (w *manualWaiter) fireLocked(m *Manual) {
	select {
	case w.ch <- w.deadline:
	default: // receiver not keeping up; drop, matching time.Ticker semantics
	}
	if w.period > 0 {
		w.deadline = w.deadline.Add(w.period)
	} else {
		w.stopped = true
	}
}
