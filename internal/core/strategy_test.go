package core

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRangeIndexPaperExample(t *testing.T) {
	// Thresholds ⟨2, 4⟩ form ranges (-∞,2], (2,4], (4,∞).
	thresholds := []int{2, 4}
	cases := []struct {
		e    int
		want int
	}{
		{-100, 0}, {0, 0}, {2, 0},
		{3, 1}, {4, 1},
		{5, 2}, {100, 2},
	}
	for _, c := range cases {
		if got := RangeIndex(c.e, thresholds); got != c.want {
			t.Errorf("RangeIndex(%d, %v) = %d, want %d", c.e, thresholds, got, c.want)
		}
	}
}

func TestRangeIndexEmptyThresholds(t *testing.T) {
	for _, e := range []int{-5, 0, 7} {
		if got := RangeIndex(e, nil); got != 0 {
			t.Errorf("RangeIndex(%d, nil) = %d, want 0", e, got)
		}
	}
}

// Property: the ranges formed by n strictly increasing thresholds are a
// partition of ℤ — every outcome lands in exactly one range, and range
// index is monotone in e.
func TestRangeIndexPartitionProperty(t *testing.T) {
	f := func(raw [5]int16, e1, e2 int16) bool {
		// Build strictly increasing thresholds from raw values.
		vals := make([]int, 0, len(raw))
		for _, v := range raw {
			vals = append(vals, int(v))
		}
		sort.Ints(vals)
		thresholds := vals[:0]
		for i, v := range vals {
			if i == 0 || v > thresholds[len(thresholds)-1] {
				thresholds = append(thresholds, v)
			}
		}
		i1 := RangeIndex(int(e1), thresholds)
		i2 := RangeIndex(int(e2), thresholds)
		if i1 < 0 || i1 > len(thresholds) {
			return false
		}
		if e1 <= e2 && i1 > i2 {
			return false // monotonicity violated
		}
		// Boundary property: e == threshold[i] maps to range i (closed
		// upper bound), e == threshold[i]+1 maps to i+1.
		for i, th := range thresholds {
			if RangeIndex(th, thresholds) != i {
				return false
			}
			if RangeIndex(th+1, thresholds) != i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCheckMapOutcomePaperExample(t *testing.T) {
	// §3.2: thresholds 75 and 95, mappings (-∞,75,-5), (75,95,4), (95,∞,5).
	c := Check{
		Name:       "response_time",
		Kind:       BasicCheck,
		Thresholds: []int{75, 95},
		Outputs:    []int{-5, 4, 5},
	}
	cases := []struct{ e, want int }{
		{0, -5}, {75, -5}, // "if the check fails more than 24 times" (e ≤ 75)
		{76, 4}, {95, 4},
		{96, 5}, {100, 5},
	}
	for _, tc := range cases {
		got, err := c.MapOutcome(tc.e)
		if err != nil {
			t.Fatalf("MapOutcome(%d): %v", tc.e, err)
		}
		if got != tc.want {
			t.Errorf("MapOutcome(%d) = %d, want %d", tc.e, got, tc.want)
		}
	}
}

func TestCheckMapOutcomeNoThresholdsIsIdentity(t *testing.T) {
	c := Check{Name: "raw", Kind: BasicCheck}
	for _, e := range []int{-3, 0, 42} {
		got, err := c.MapOutcome(e)
		if err != nil || got != e {
			t.Errorf("MapOutcome(%d) = %d, %v; want identity", e, got, err)
		}
	}
}

func TestCheckMapOutcomeBadShape(t *testing.T) {
	c := Check{Name: "bad", Thresholds: []int{1, 2}, Outputs: []int{1}}
	if _, err := c.MapOutcome(0); err == nil {
		t.Fatal("MapOutcome accepted mismatched outputs")
	}
}

// Property: output mapping is total — for any strictly increasing threshold
// tuple with len+1 outputs, every e maps to some output that is an element
// of Outputs.
func TestMapOutcomeTotalProperty(t *testing.T) {
	f := func(e int16, seed uint8) bool {
		n := int(seed%4) + 1
		thresholds := make([]int, n)
		outputs := make([]int, n+1)
		for i := range thresholds {
			thresholds[i] = (i + 1) * 10
		}
		for i := range outputs {
			outputs[i] = i * 7
		}
		c := Check{Name: "p", Thresholds: thresholds, Outputs: outputs}
		got, err := c.MapOutcome(int(e))
		if err != nil {
			return false
		}
		for _, o := range outputs {
			if got == o {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateOutcomeWeightedSum(t *testing.T) {
	st := State{
		ID: "b",
		Checks: []Check{
			{Name: "c1", Weight: 2},
			{Name: "c2", Weight: 0.5},
			{Name: "c3"}, // zero weight treated as 1
		},
	}
	got, err := st.Outcome([]int{3, 4, -1})
	if err != nil {
		t.Fatalf("Outcome: %v", err)
	}
	// 3*2 + 4*0.5 + (-1)*1 = 7
	if got != 7 {
		t.Errorf("Outcome = %d, want 7", got)
	}
}

func TestStateOutcomeRounding(t *testing.T) {
	st := State{ID: "r", Checks: []Check{{Name: "c", Weight: 0.5}}}
	got, err := st.Outcome([]int{3}) // 1.5 rounds to 2
	if err != nil || got != 2 {
		t.Errorf("Outcome = %d, %v; want 2", got, err)
	}
	st2 := State{ID: "r2", Checks: []Check{{Name: "c", Weight: 0.5}}}
	got2, err := st2.Outcome([]int{-3}) // -1.5 rounds away from zero to -2
	if err != nil || got2 != -2 {
		t.Errorf("Outcome = %d, %v; want -2", got2, err)
	}
}

// Property: outcome aggregation is linear — scaling all results by k scales
// the (unrounded) outcome by k; verified through integer-exact cases.
func TestOutcomeLinearityProperty(t *testing.T) {
	f := func(r1, r2 int8, k int8) bool {
		if k == 0 {
			return true
		}
		st := State{ID: "l", Checks: []Check{{Name: "a", Weight: 1}, {Name: "b", Weight: 2}}}
		base, err1 := st.Outcome([]int{int(r1), int(r2)})
		scaled, err2 := st.Outcome([]int{int(r1) * int(k), int(r2) * int(k)})
		return err1 == nil && err2 == nil && scaled == base*int(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateOutcomeLengthMismatch(t *testing.T) {
	st := State{ID: "x", Checks: []Check{{Name: "only"}}}
	if _, err := st.Outcome([]int{1, 2}); err == nil {
		t.Fatal("Outcome accepted wrong result count")
	}
}

func TestNextStateRunningExample(t *testing.T) {
	s := RunningExample(time.Millisecond)
	b, ok := s.Automaton.State("b")
	if !ok {
		t.Fatal("state b missing")
	}
	cases := []struct {
		e    int
		want string
	}{
		{3, "g"}, {0, "g"}, // ≤ 3 rollback
		{4, "c"},           // = 4 slow increase
		{5, "d"}, {9, "d"}, // > 4 fast path
	}
	for _, c := range cases {
		got, err := b.NextState(c.e)
		if err != nil {
			t.Fatalf("NextState(%d): %v", c.e, err)
		}
		if got != c.want {
			t.Errorf("δ(b, %d) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestRunningExampleValidates(t *testing.T) {
	s := RunningExample(time.Millisecond)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRunningExampleReachability(t *testing.T) {
	s := RunningExample(time.Millisecond)
	reach := s.ReachableStates()
	for _, id := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		if !reach[id] {
			t.Errorf("state %q unreachable", id)
		}
	}
}

func TestFindServiceAndVersion(t *testing.T) {
	s := RunningExample(time.Millisecond)
	svc, ok := s.FindService("search")
	if !ok {
		t.Fatal("search service missing")
	}
	if _, ok := svc.FindVersion("fastSearch"); !ok {
		t.Error("fastSearch version missing")
	}
	if _, ok := svc.FindVersion("nope"); ok {
		t.Error("found nonexistent version")
	}
	if _, ok := s.FindService("nope"); ok {
		t.Error("found nonexistent service")
	}
}

func TestCheckKindString(t *testing.T) {
	if BasicCheck.String() != "basic" || ExceptionCheck.String() != "exception" {
		t.Error("CheckKind.String wrong")
	}
	if CheckKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
	if RouteCookie.String() != "cookie" || RouteHeader.String() != "header" {
		t.Error("RoutingMode.String wrong")
	}
	if RoutingMode(42).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestCheckDurationHelpers(t *testing.T) {
	c := Check{Interval: 10 * time.Second, Executions: 12}
	if got := c.TotalDuration(); got != 110*time.Second {
		t.Errorf("TotalDuration = %v, want 110s (first execution at t0)", got)
	}
	c0 := Check{Interval: time.Second}
	if c0.ExecutionsOrDefault() != 1 {
		t.Error("ExecutionsOrDefault != 1 for zero executions")
	}
}

func TestOutcomeExcludesUnweightedExceptionChecks(t *testing.T) {
	st := State{
		ID: "a",
		Checks: []Check{
			{Name: "basic", Kind: BasicCheck, Weight: 1},
			{Name: "exc", Kind: ExceptionCheck}, // zero weight: excluded
			{Name: "exc-weighted", Kind: ExceptionCheck, Weight: 2},
		},
	}
	// basic mapped 5, exception counts 96 (excluded) and 3 (weighted ×2).
	got, err := st.Outcome([]int{5, 96, 3})
	if err != nil {
		t.Fatalf("Outcome: %v", err)
	}
	if got != 11 { // 5*1 + 3*2
		t.Errorf("Outcome = %d, want 11", got)
	}
}
