package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
)

const cliStrategy = `
name: cli-test
deployment:
  services:
    - service: svc
      versions:
        - name: v1
          endpoint: 127.0.0.1:9001
        - name: v2
          endpoint: 127.0.0.1:9002
strategy:
  phases:
    - phase: step
      duration: 50ms
      routes:
        - route:
            service: svc
            weights: {v1: 90, v2: 10}
      on:
        success: end
    - phase: end
      routes:
        - route:
            service: svc
            weights: {v2: 100}
`

func writeStrategy(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "strategy.yaml")
	if err := os.WriteFile(path, []byte(cliStrategy), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func startEngineAPI(t *testing.T) (*engine.Engine, string) {
	t.Helper()
	eng := engine.New()
	t.Cleanup(eng.Shutdown)
	srv := httptest.NewServer(engine.NewAPI(eng, dsl.Compile).Handler())
	t.Cleanup(srv.Close)
	return eng, srv.URL
}

func TestCLIValidateGraphEstimate(t *testing.T) {
	path := writeStrategy(t)
	for _, cmd := range []string{"validate", "graph", "estimate"} {
		if err := run([]string{cmd, path}); err != nil {
			t.Errorf("%s: %v", cmd, err)
		}
	}
}

func TestCLIScheduleStatusEventsAbort(t *testing.T) {
	eng, url := startEngineAPI(t)
	path := writeStrategy(t)

	if err := run([]string{"-engine", url, "schedule", path}); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	r, ok := eng.Run("cli-test")
	if !ok {
		t.Fatal("strategy not enacted")
	}
	if err := run([]string{"-engine", url, "status"}); err != nil {
		t.Errorf("status: %v", err)
	}
	if err := run([]string{"-engine", url, "status", "cli-test"}); err != nil {
		t.Errorf("status name: %v", err)
	}
	if err := run([]string{"-engine", url, "events", "-n", "10"}); err != nil {
		t.Errorf("events: %v", err)
	}
	// Abort may race completion of this very short strategy; both are fine.
	_ = run([]string{"-engine", url, "abort", "cli-test"})
	deadline := time.Now().Add(10 * time.Second)
	for !r.Done() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !r.Done() {
		t.Error("run never finished")
	}
}

// slowStrategy holds its first phase for 30s so CLI operator verbs can act
// mid-phase deterministically.
const slowStrategy = `
name: cli-slow
deployment:
  services:
    - service: svc
      versions:
        - name: v1
          endpoint: 127.0.0.1:9001
        - name: v2
          endpoint: 127.0.0.1:9002
strategy:
  phases:
    - phase: canary
      duration: 30s
      routes:
        - route:
            service: svc
            weights: {v1: 90, v2: 10}
      on:
        success: end
    - phase: end
      routes:
        - route:
            service: svc
            weights: {v2: 100}
`

func TestCLIOperatorVerbsAndWatch(t *testing.T) {
	eng, url := startEngineAPI(t)
	path := filepath.Join(t.TempDir(), "slow.yaml")
	if err := os.WriteFile(path, []byte(slowStrategy), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"-engine", url, "schedule", "-dry-run", path}); err != nil {
		t.Fatalf("schedule -dry-run: %v", err)
	}
	if len(eng.Runs()) != 0 {
		t.Fatal("dry-run enacted a strategy")
	}

	if err := run([]string{"-engine", url, "schedule", path}); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	r, ok := eng.Run("cli-slow")
	if !ok {
		t.Fatal("strategy not enacted")
	}

	if err := run([]string{"-engine", url, "pause", "cli-slow"}); err != nil {
		t.Fatalf("pause: %v", err)
	}
	if st := r.Status(); st.State != engine.RunPaused {
		t.Fatalf("state after pause = %s", st.State)
	}
	// A stale generation is refused; the current one resumes.
	if err := run([]string{"-engine", url, "resume", "cli-slow", "42"}); err == nil {
		t.Error("stale resume accepted")
	}
	if err := run([]string{"-engine", url, "resume", "cli-slow", "1"}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := run([]string{"-engine", url, "promote", "cli-slow", "end"}); err != nil {
		t.Fatalf("promote: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !r.Done() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := r.Status(); st.State != engine.RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	// watch replays the finished run's events and exits on its completion.
	if err := run([]string{"-engine", url, "watch", "cli-slow"}); err != nil {
		t.Fatalf("watch: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"validate"}); err == nil {
		t.Error("validate without file accepted")
	}
	if err := run([]string{"validate", "/does/not/exist.yaml"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-engine", "http://127.0.0.1:1", "status"}); err == nil {
		t.Error("dead engine accepted")
	}
	// Invalid DSL file.
	bad := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(bad, []byte("name: broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate", bad}); err == nil {
		t.Error("broken strategy validated")
	}
}

func TestCLIValidateWarnsUnreachable(t *testing.T) {
	// A strategy with an unreachable state still validates but warns; the
	// printStatus path is covered through the live engine test above.
	src := cliStrategy + `
    - phase: orphan
      duration: 1s
      routes:
        - route:
            service: svc
            weights: {v1: 100}
      on:
        success: end
`
	path := filepath.Join(t.TempDir(), "warn.yaml")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate", path}); err != nil {
		t.Errorf("validate: %v", err)
	}
	// Sanity: the file really has an unreachable state.
	s, err := dsl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if reach := s.ReachableStates(); reach["orphan"] {
		t.Error("orphan unexpectedly reachable")
	}
	var _ core.Strategy = *s
}
