package sysmon

import (
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/metrics"
)

const statLine = "1234 (bifrost engine) S 1 1 1 0 -1 4194560 500 0 0 0 250 150 0 0 20 0 8 0 12345 1000000 2000 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0"

func TestParseProcStat(t *testing.T) {
	d, err := parseProcStat(statLine)
	if err != nil {
		t.Fatalf("parseProcStat: %v", err)
	}
	// utime=250 + stime=150 = 400 ticks at 100 Hz = 4s.
	if d != 4*time.Second {
		t.Errorf("cpu time = %v, want 4s", d)
	}
}

func TestParseProcStatErrors(t *testing.T) {
	for _, s := range []string{"", "no parens here", "1 (x) S 1 2 3"} {
		if _, err := parseProcStat(s); err == nil {
			t.Errorf("parseProcStat(%q) succeeded", s)
		}
	}
}

func TestProcessCPUTimeOnLinux(t *testing.T) {
	d, err := ProcessCPUTime()
	if err != nil {
		t.Skipf("not on Linux procfs: %v", err)
	}
	if d < 0 {
		t.Errorf("cpu time = %v", d)
	}
}

func TestSamplerPublishesGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := clock.NewManual(time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC))
	s := New(reg, "engine", time.Second, clk)

	// Fake CPU: 100ms of CPU per 1s wall → 10% utilization.
	var fake time.Duration
	s.readCPU = func() (time.Duration, error) {
		fake += 100 * time.Millisecond
		return fake, nil
	}
	s.SampleOnce()
	clk.Advance(time.Second)
	s.SampleOnce()

	points := reg.Gather()
	vals := map[string]float64{}
	for _, p := range points {
		if p.Labels["container"] == "engine" {
			vals[p.Name] = p.Value
		}
	}
	if got := vals["container_cpu_busy_ratio"]; got < 0.09 || got > 0.11 {
		t.Errorf("busy ratio = %v, want ≈ 0.1", got)
	}
	if got := vals["container_cpu_usage_percent"]; got < 9 || got > 11 {
		t.Errorf("usage percent = %v, want ≈ 10", got)
	}
	if vals["container_memory_bytes"] <= 0 {
		t.Error("memory gauge missing")
	}
	if vals["container_goroutines"] <= 0 {
		t.Error("goroutine gauge missing")
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(reg, "x", time.Millisecond, clock.Real{})
	s.Start()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(reg.Gather()) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop() // must not hang
	if len(reg.Gather()) == 0 {
		t.Skip("sampler produced nothing (no procfs?)")
	}
}
