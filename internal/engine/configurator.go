package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"bifrost/internal/core"
	"bifrost/internal/proxy"
)

// Configurator delivers a state's dynamic routing configuration to the
// proxy fronting the affected service. The engine calls Configure once per
// routing config whenever the automaton enters a state.
type Configurator interface {
	Configure(ctx context.Context, s *core.Strategy, state *core.State,
		rc core.RoutingConfig, generation int64) error
}

// NopConfigurator ignores routing updates; useful for model-only engines
// and the pure-scalability experiments (§5.2 removes app load entirely).
type NopConfigurator struct{}

var _ Configurator = NopConfigurator{}

// Configure implements Configurator.
func (NopConfigurator) Configure(context.Context, *core.Strategy, *core.State,
	core.RoutingConfig, int64) error {
	return nil
}

// BuildProxyConfig materializes a core.RoutingConfig into the wire config a
// proxy consumes, resolving version names to endpoints.
func BuildProxyConfig(s *core.Strategy, rc core.RoutingConfig, generation int64) (proxy.Config, error) {
	svc, ok := s.FindService(rc.Service)
	if !ok {
		return proxy.Config{}, fmt.Errorf("engine: routing for unknown service %q", rc.Service)
	}
	cfg := proxy.Config{
		Service:    rc.Service,
		Generation: generation,
		Sticky:     rc.Sticky,
	}
	if rc.Mode == core.RouteHeader {
		cfg.Mode = "header"
		cfg.Header = rc.Header
	}
	// Keep zero-weighted versions routable so shadows and header groups
	// can reference them.
	names, shares, err := rc.NormalizedWeights()
	if err != nil {
		return proxy.Config{}, fmt.Errorf("engine: %w", err)
	}
	shareOf := make(map[string]float64, len(names))
	for i, n := range names {
		shareOf[n] = shares[i]
	}
	for name := range rc.Weights {
		v, ok := svc.FindVersion(name)
		if !ok {
			return proxy.Config{}, fmt.Errorf("engine: unknown version %q of %q", name, rc.Service)
		}
		cfg.Backends = append(cfg.Backends, proxy.Backend{
			Version: name,
			URL:     endpointURL(v.Endpoint),
			Weight:  shareOf[name],
		})
	}
	for _, sh := range rc.Shadows {
		psh := proxy.Shadow{Source: sh.Source, Target: sh.Target, Percent: sh.Percent}
		if _, routable := rc.Weights[sh.Target]; !routable {
			v, ok := svc.FindVersion(sh.Target)
			if !ok {
				return proxy.Config{}, fmt.Errorf("engine: unknown shadow target %q", sh.Target)
			}
			psh.TargetURL = endpointURL(v.Endpoint)
		}
		cfg.Shadows = append(cfg.Shadows, psh)
	}
	return cfg, nil
}

func endpointURL(endpoint string) string {
	if strings.Contains(endpoint, "://") {
		return endpoint
	}
	return "http://" + endpoint
}

// LocalConfigurator pushes configs directly into in-process proxies, used
// by tests, examples and the experiment harness (everything runs on one
// machine, like the paper's Docker Swarm but without the containers).
type LocalConfigurator struct {
	mu      sync.RWMutex
	proxies map[string]*proxy.Proxy
}

var _ Configurator = (*LocalConfigurator)(nil)

// NewLocalConfigurator creates an empty local configurator.
func NewLocalConfigurator() *LocalConfigurator {
	return &LocalConfigurator{proxies: make(map[string]*proxy.Proxy, 4)}
}

// Register attaches the proxy serving a service.
func (lc *LocalConfigurator) Register(service string, p *proxy.Proxy) {
	lc.mu.Lock()
	lc.proxies[service] = p
	lc.mu.Unlock()
}

// Configure implements Configurator.
func (lc *LocalConfigurator) Configure(ctx context.Context, s *core.Strategy,
	state *core.State, rc core.RoutingConfig, generation int64) error {
	lc.mu.RLock()
	p, ok := lc.proxies[rc.Service]
	lc.mu.RUnlock()
	if !ok {
		return fmt.Errorf("engine: no proxy registered for service %q", rc.Service)
	}
	cfg, err := BuildProxyConfig(s, rc, generation)
	if err != nil {
		return err
	}
	return p.SetConfig(cfg)
}

// HTTPConfigurator pushes configs to remote proxies over their admin API,
// using the proxy locations from the strategy's deployment section.
type HTTPConfigurator struct{}

var _ Configurator = HTTPConfigurator{}

// Configure implements Configurator.
func (HTTPConfigurator) Configure(ctx context.Context, s *core.Strategy,
	state *core.State, rc core.RoutingConfig, generation int64) error {
	svc, ok := s.FindService(rc.Service)
	if !ok {
		return fmt.Errorf("engine: routing for unknown service %q", rc.Service)
	}
	if svc.ProxyURL == "" {
		return fmt.Errorf("engine: service %q has no proxy URL in deployment", rc.Service)
	}
	cfg, err := BuildProxyConfig(s, rc, generation)
	if err != nil {
		return err
	}
	client := &proxy.Client{BaseURL: endpointURL(svc.ProxyURL)}
	return client.SetConfig(ctx, cfg)
}
