// Package shop implements the case-study application of the paper's
// evaluation (§5.1.1): a microservice e-commerce site selling consumer
// electronics, consisting of a frontend, three RESTful services (product,
// search, auth), a document database, a metrics provider, and an
// nginx-style gateway as the central entry point.
//
// The product and search services exist in multiple versions (product A/B,
// fastSearch) whose behaviour differs in latency and conversion, so live
// testing strategies have something real to measure. Every service
// instruments a metrics registry and calls its dependencies over real HTTP,
// which is what makes dark-launch traffic amplification (auth + product +
// database) observable, as in the paper.
package shop

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"bifrost/internal/docstore"
	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
	"bifrost/internal/uuid"
)

// SeedCatalog inserts n consumer-electronics products into the store and
// returns their ids.
func SeedCatalog(store *docstore.Store, n int) ([]string, error) {
	kinds := []string{"TV", "Laptop", "Phone", "Tablet", "Camera", "Monitor", "Router", "Speaker"}
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		kind := kinds[i%len(kinds)]
		id, err := store.Insert("products", docstore.Document{
			"_id":      fmt.Sprintf("p-%03d", i),
			"name":     fmt.Sprintf("%s Model %d", kind, i),
			"kind":     kind,
			"price":    float64(50 + (i*37)%950),
			"keywords": strings.ToLower(kind),
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// SeedUsers inserts n user accounts (email user-i@example.com, password
// "secret") and returns their emails.
func SeedUsers(store *docstore.Store, n int) ([]string, error) {
	if err := store.EnsureUniqueIndex("users", "email"); err != nil {
		return nil, err
	}
	emails := make([]string, 0, n)
	for i := 0; i < n; i++ {
		email := fmt.Sprintf("user-%d@example.com", i)
		if _, err := store.Insert("users", docstore.Document{
			"email": email, "password": "secret",
		}); err != nil {
			return nil, err
		}
		emails = append(emails, email)
	}
	return emails, nil
}

// Auth is the authentication service: it issues bearer tokens on login and
// validates them for the other services.
type Auth struct {
	dbURL    string
	registry *metrics.Registry

	mu     sync.Mutex
	tokens map[string]string // token -> email
}

// NewAuth creates the auth service backed by the document store at dbURL.
func NewAuth(dbURL string, registry *metrics.Registry) *Auth {
	if registry == nil {
		registry = metrics.NewRegistry()
	}
	return &Auth{
		dbURL:    dbURL,
		registry: registry,
		tokens:   make(map[string]string, 128),
	}
}

// Registry exposes the service's metrics.
func (a *Auth) Registry() *metrics.Registry { return a.registry }

// Handler returns the HTTP interface.
func (a *Auth) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /auth/login", a.handleLogin)
	mux.HandleFunc("GET /auth/validate", a.handleValidate)
	mux.HandleFunc("GET /-/healthy", healthy("auth"))
	mux.Handle("GET /metrics", a.registry.Handler())
	return mux
}

type loginRequest struct {
	Email    string `json:"email"`
	Password string `json:"password"`
}

func (a *Auth) handleLogin(w http.ResponseWriter, r *http.Request) {
	labels := metrics.Labels{"service": "auth"}
	a.registry.Counter("shop_requests_total", labels).Inc()
	var req loginRequest
	if err := httpx.ReadJSON(r, &req); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Verify credentials against the user collection in the database.
	var users []docstore.Document
	err := httpx.PostJSON(r.Context(), a.dbURL+"/db/users/find", docstore.FindRequest{
		Equals: map[string]any{"email": req.Email, "password": req.Password},
		Limit:  1,
	}, &users)
	if err != nil {
		a.registry.Counter("shop_request_errors_total", labels).Inc()
		httpx.WriteError(w, http.StatusBadGateway, "user lookup: "+err.Error())
		return
	}
	if len(users) == 0 {
		a.registry.Counter("shop_auth_denied_total", labels).Inc()
		httpx.WriteError(w, http.StatusUnauthorized, "bad credentials")
		return
	}
	token := uuid.MustNewV4().String()
	a.mu.Lock()
	a.tokens[token] = req.Email
	a.mu.Unlock()
	a.registry.Counter("shop_logins_total", labels).Inc()
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"token": token})
}

func (a *Auth) handleValidate(w http.ResponseWriter, r *http.Request) {
	labels := metrics.Labels{"service": "auth"}
	a.registry.Counter("shop_requests_total", labels).Inc()
	token := bearerToken(r)
	a.mu.Lock()
	email, ok := a.tokens[token]
	a.mu.Unlock()
	if !ok {
		a.registry.Counter("shop_auth_denied_total", labels).Inc()
		httpx.WriteError(w, http.StatusUnauthorized, "invalid token")
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"email": email})
}

func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if strings.HasPrefix(h, prefix) {
		return h[len(prefix):]
	}
	return ""
}

// validateWith checks the request's bearer token against the auth service.
func validateWith(ctx context.Context, authURL string, r *http.Request) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, authURL+"/auth/validate", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", r.Header.Get("Authorization"))
	resp, err := httpx.Client.Do(req)
	if err != nil {
		return fmt.Errorf("auth unreachable: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("auth rejected: status %d", resp.StatusCode)
	}
	return nil
}

// VariantProfile shapes a service version's observable behaviour, giving
// live tests real differences to detect.
type VariantProfile struct {
	// Version labels the variant's metrics ("product", "productA", …).
	Version string
	// ExtraLatency is added to every request (a slower implementation).
	ExtraLatency time.Duration
	// ErrorRate injects HTTP 500s with this probability (0..1); failure
	// injection for canary and exception-check tests.
	ErrorRate float64
	// ConversionBoost scales how often Buy requests convert into sales
	// metrics (A/B test business-metric differences). 1.0 is neutral.
	ConversionBoost float64
	// Seed makes injected randomness reproducible.
	Seed int64
}

func (p VariantProfile) normalized() VariantProfile {
	if p.ConversionBoost == 0 {
		p.ConversionBoost = 1
	}
	return p
}

func healthy(service string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{
			"status": "ok", "service": service,
		})
	}
}

// variantGate applies the profile's latency and error injection; it
// returns false after writing an error response.
type variantGate struct {
	profile VariantProfile
	mu      sync.Mutex
	rng     *rand.Rand
}

func newVariantGate(p VariantProfile) *variantGate {
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &variantGate{profile: p.normalized(), rng: rand.New(rand.NewSource(seed))}
}

func (g *variantGate) pass(w http.ResponseWriter) bool {
	if g.profile.ExtraLatency > 0 {
		time.Sleep(g.profile.ExtraLatency)
	}
	if g.profile.ErrorRate > 0 {
		g.mu.Lock()
		failed := g.rng.Float64() < g.profile.ErrorRate
		g.mu.Unlock()
		if failed {
			httpx.WriteError(w, http.StatusInternalServerError, "injected failure")
			return false
		}
	}
	return true
}

func (g *variantGate) converts(base float64) bool {
	p := base * g.profile.ConversionBoost
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rng.Float64() < p
}
