package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
	"bifrost/internal/proxy"
	"bifrost/internal/sysmon"
)

// CPUStats summarizes the engine-process CPU utilization samples collected
// during a sweep step — the data behind each boxplot of Figures 7 and 9.
// Values are percent of one core (matching the paper's single-core VMs).
type CPUStats struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// SweepPoint is one x-position of a scalability figure.
type SweepPoint struct {
	// N is the number of parallel strategies (Fig 7/8) or checks (9/10).
	N int
	// CPU is the utilization boxplot data.
	CPU CPUStats
	// DelayMeanSeconds/DelaySDSeconds are the enactment delay beyond the
	// specified execution time (Fig 8/10).
	DelayMeanSeconds float64
	DelaySDSeconds   float64
	// Completed/Failed count strategy outcomes at this step.
	Completed int
	Failed    int
}

// cpuSampler samples process CPU utilization on a fixed interval.
type cpuSampler struct {
	interval time.Duration
	samples  []float64
	stop     chan struct{}
	done     chan struct{}
}

func startCPUSampler(interval time.Duration) *cpuSampler {
	s := &cpuSampler{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		prev, err := sysmon.ProcessCPUTime()
		if err != nil {
			return
		}
		prevAt := time.Now()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				cur, err := sysmon.ProcessCPUTime()
				if err != nil {
					continue
				}
				now := time.Now()
				wall := now.Sub(prevAt)
				if wall > 0 {
					s.samples = append(s.samples,
						100*float64(cur-prev)/float64(wall))
				}
				prev, prevAt = cur, now
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

func (s *cpuSampler) Stop() CPUStats {
	close(s.stop)
	<-s.done
	return summarizeCPU(s.samples)
}

func summarizeCPU(samples []float64) CPUStats {
	if len(samples) == 0 {
		return CPUStats{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		pos := p * float64(len(sorted)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(sorted) {
			return sorted[lo]
		}
		return sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return CPUStats{
		N: len(sorted), Min: sorted[0], Max: sorted[len(sorted)-1],
		Q1: q(0.25), Median: q(0.5), Q3: q(0.75),
		Mean: sum / float64(len(sorted)),
	}
}

// tolerantConfigurator swallows proxy generation conflicts. When many
// strategies reconfigure the same proxy in parallel — the setup of §5.2.1 —
// a push may arrive after a newer one; the experiment treats that as benign
// (the paper's strategies were identical) rather than failing the run.
type tolerantConfigurator struct {
	inner engine.Configurator
}

func (t tolerantConfigurator) Configure(ctx context.Context, s *core.Strategy,
	state *core.State, rc core.RoutingConfig, gen int64) error {
	err := t.inner.Configure(ctx, s, state, rc, gen)
	var prob *httpx.Problem
	if errors.As(err, &prob) && prob.Code == proxy.CodeStaleGeneration {
		return nil
	}
	var apiErr *httpx.Error // legacy envelope, pre-typed-error proxies
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusConflict {
		return nil
	}
	return err
}

// ScalabilityStrategyYAML renders the modified release strategy of §5.2.1:
// the same four phases, but only product and product A ("the checks and
// routing instrumentation for product B were ... removed").
func ScalabilityStrategyYAML(name string, tb *Testbed, plan PhasePlan) string {
	return fmt.Sprintf(`
name: %s
deployment:
  services:
    - service: product
      proxy: %s
      versions:
        - name: product
          endpoint: %s
        - name: productA
          endpoint: %s
providers:
  prometheus: %s
strategy:
  start: canary
  phases:
    - phase: canary
      duration: %s
      routes:
        - route:
            service: product
            weights: {product: 95, productA: 5}
      checks:
        - metric:
            name: a_errors
            provider: prometheus
            query: shop_request_errors_total{version="productA"}
            intervalTime: %s
            intervalLimit: %d
            threshold: %d
            validator: "<5"
      on:
        success: darklaunch
        failure: rollback
    - phase: darklaunch
      duration: %s
      routes:
        - route:
            service: product
            weights: {product: 100}
            shadows:
              - target: productA
                percent: 100
      on:
        success: abtest
        failure: rollback
    - phase: abtest
      duration: %s
      routes:
        - route:
            service: product
            weights: {product: 50, productA: 50}
            sticky: true
      checks:
        - metric:
            name: a_sales
            provider: prometheus
            query: shop_sales_total{version="productA"}
            intervalLimit: 1
            validator: ">=0"
      on:
        success: rollout
        failure: rollback
    - phase: rollout
      gradual:
        service: product
        stable: product
        candidate: productA
        from: %g
        to: 100
        step: %g
        interval: %s
      on:
        success: done
    - phase: done
      routes:
        - route:
            service: product
            weights: {product: 100}
    - phase: rollback
      routes:
        - route:
            service: product
            weights: {product: 100}
`,
		name,
		tb.ProductProxySrv.URL(),
		tb.ProductVersions["product"].URL(),
		tb.ProductVersions["productA"].URL(),
		tb.MetricsSrv.URL(),
		plan.Canary,
		plan.CheckInterval, plan.CheckCount, plan.CheckCount,
		plan.Dark,
		plan.AB,
		plan.RolloutStepPct, plan.RolloutStepPct, plan.RolloutStep,
	)
}

// ParallelStrategiesConfig parameterizes the §5.2.1 sweep.
type ParallelStrategiesConfig struct {
	// Counts are the sweep's x positions (paper: 1,5,10,20,…,200).
	Counts []int
	// Plan is the per-strategy phase timing.
	Plan PhasePlan
	// SampleInterval is the CPU sampling period.
	SampleInterval time.Duration
}

func (c ParallelStrategiesConfig) withDefaults() ParallelStrategiesConfig {
	if len(c.Counts) == 0 {
		c.Counts = []int{1, 5, 10, 20}
	}
	if c.Plan == (PhasePlan{}) {
		c.Plan = PhasePlan{
			Canary: 2 * time.Second, Dark: 2 * time.Second, AB: 2 * time.Second,
			RolloutStep: 500 * time.Millisecond, RolloutStepPct: 20,
			CheckInterval: 500 * time.Millisecond, CheckCount: 4,
		}
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 250 * time.Millisecond
	}
	return c
}

// RunParallelStrategies executes the Figure 7/8 sweep: for each N it starts
// N identical release strategies simultaneously on one engine and measures
// CPU utilization and per-strategy enactment delay.
func RunParallelStrategies(ctx context.Context, cfg ParallelStrategiesConfig) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	points := make([]SweepPoint, 0, len(cfg.Counts))
	for _, n := range cfg.Counts {
		p, err := runParallelStrategiesStep(ctx, n, cfg)
		if err != nil {
			return points, fmt.Errorf("n=%d: %w", n, err)
		}
		points = append(points, p)
	}
	return points, nil
}

func runParallelStrategiesStep(ctx context.Context, n int, cfg ParallelStrategiesConfig) (SweepPoint, error) {
	tb, err := NewTestbed(TestbedConfig{WithProxies: true, Products: 4, Users: 2})
	if err != nil {
		return SweepPoint{}, err
	}
	defer tb.Close()
	// As in §5.2.1, no load targets the case-study services; the engine
	// and its check/query/routing traffic are the system under test.
	eng := engine.New(engine.WithConfigurator(
		tolerantConfigurator{inner: engine.HTTPConfigurator{}}))
	defer eng.Shutdown()

	// Give the scraper one round so check queries find data.
	tb.Scraper.ScrapeOnce(ctx)

	strategies := make([]*core.Strategy, 0, n)
	for i := 0; i < n; i++ {
		s, cerr := dsl.Compile(ScalabilityStrategyYAML(fmt.Sprintf("rollout-%03d", i), tb, cfg.Plan))
		if cerr != nil {
			return SweepPoint{}, cerr
		}
		strategies = append(strategies, s)
	}

	sampler := startCPUSampler(cfg.SampleInterval)
	runs := make([]*engine.Run, 0, n)
	for _, s := range strategies {
		r, eerr := eng.Enact(s)
		if eerr != nil {
			sampler.Stop()
			return SweepPoint{}, eerr
		}
		runs = append(runs, r)
	}

	var wg sync.WaitGroup
	for _, r := range runs {
		wg.Add(1)
		go func(r *engine.Run) {
			defer wg.Done()
			waitCtx, cancel := context.WithTimeout(ctx, 10*time.Minute)
			defer cancel()
			_ = r.Wait(waitCtx)
		}(r)
	}
	wg.Wait()
	cpu := sampler.Stop()

	return summarizeRuns(n, cpu, runs), nil
}

func summarizeRuns(n int, cpu CPUStats, runs []*engine.Run) SweepPoint {
	p := SweepPoint{N: n, CPU: cpu}
	delays := make([]float64, 0, len(runs))
	for _, r := range runs {
		st := r.Status()
		switch st.State {
		case engine.RunCompleted:
			p.Completed++
			delays = append(delays, st.Delay().Seconds())
		default:
			p.Failed++
		}
	}
	if len(delays) > 0 {
		var sum float64
		for _, d := range delays {
			sum += d
		}
		p.DelayMeanSeconds = sum / float64(len(delays))
		var ss float64
		for _, d := range delays {
			diff := d - p.DelayMeanSeconds
			ss += diff * diff
		}
		if len(delays) > 1 {
			p.DelaySDSeconds = math.Sqrt(ss / float64(len(delays)-1))
		}
	}
	return p
}

// ParallelChecksConfig parameterizes the §5.2.2 sweep.
type ParallelChecksConfig struct {
	// GroupCounts are the values of n; each step runs 8·n checks per
	// phase (paper: n = 1,10,20,…,200 → 8 to 1600 checks).
	GroupCounts []int
	// PhaseDuration is each of the two phases' length (paper: 60s).
	PhaseDuration time.Duration
	// CheckInterval is the checks' re-execution period.
	CheckInterval time.Duration
	// SampleInterval is the CPU sampling period.
	SampleInterval time.Duration
}

func (c ParallelChecksConfig) withDefaults() ParallelChecksConfig {
	if len(c.GroupCounts) == 0 {
		c.GroupCounts = []int{1, 5, 10}
	}
	if c.PhaseDuration == 0 {
		c.PhaseDuration = 3 * time.Second
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 500 * time.Millisecond
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 250 * time.Millisecond
	}
	return c
}

// RunParallelChecks executes the Figure 9/10 sweep: one trivial two-phase
// strategy with 8·n parallel checks (3 availability probes of the product
// service + 5 metrics queries per group, as in the paper).
func RunParallelChecks(ctx context.Context, cfg ParallelChecksConfig) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	points := make([]SweepPoint, 0, len(cfg.GroupCounts))
	for _, n := range cfg.GroupCounts {
		p, err := runParallelChecksStep(ctx, n, cfg)
		if err != nil {
			return points, fmt.Errorf("n=%d: %w", n, err)
		}
		points = append(points, p)
	}
	return points, nil
}

func runParallelChecksStep(ctx context.Context, n int, cfg ParallelChecksConfig) (SweepPoint, error) {
	tb, err := NewTestbed(TestbedConfig{WithProxies: true, Products: 4, Users: 2})
	if err != nil {
		return SweepPoint{}, err
	}
	defer tb.Close()
	eng := engine.New(engine.WithConfigurator(
		tolerantConfigurator{inner: engine.HTTPConfigurator{}}))
	defer eng.Shutdown()
	tb.Scraper.ScrapeOnce(ctx)

	s := checksStrategy("many-checks", tb, n, cfg)

	sampler := startCPUSampler(cfg.SampleInterval)
	run, err := eng.Enact(s)
	if err != nil {
		sampler.Stop()
		return SweepPoint{}, err
	}
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Minute)
	defer cancel()
	_ = run.Wait(waitCtx)
	cpu := sampler.Stop()

	p := summarizeRuns(8*n, cpu, []*engine.Run{run})
	return p, nil
}

// checksStrategy builds the §5.2.2 strategy: two identical phases, each
// with 8·n checks — per group of 8, three product-availability probes and
// five Prometheus queries.
func checksStrategy(name string, tb *Testbed, n int, cfg ParallelChecksConfig) *core.Strategy {
	executions := int(cfg.PhaseDuration / cfg.CheckInterval)
	if executions < 1 {
		executions = 1
	}
	productURL := tb.ProductVersions["product"].URL()
	client := &metrics.Client{BaseURL: tb.MetricsSrv.URL()}

	availability := func() core.Evaluator {
		return core.EvaluatorFunc(func(ctx context.Context) (bool, error) {
			var out map[string]string
			if err := httpx.GetJSON(ctx, productURL+"/-/healthy", &out); err != nil {
				return false, err
			}
			return out["status"] == "ok", nil
		})
	}
	promQuery := func(query string) core.Evaluator {
		return core.EvaluatorFunc(func(ctx context.Context) (bool, error) {
			v, err := client.Query(ctx, query)
			if err != nil {
				return false, err
			}
			return v < 5, nil
		})
	}
	queries := []string{
		`shop_request_errors_total{version="product"}`,
		`shop_request_errors_total{version="productA"}`,
		`shop_sales_total{version="productA"} - shop_sales_total{version="productA"}`,
		`sum(shop_request_errors_total)`,
		`min(shop_request_errors_total)`,
	}

	mkChecks := func() []core.Check {
		checks := make([]core.Check, 0, 8*n)
		for g := 0; g < n; g++ {
			for a := 0; a < 3; a++ {
				checks = append(checks, core.Check{
					Name:       fmt.Sprintf("avail-%d-%d", g, a),
					Kind:       core.BasicCheck,
					Eval:       availability(),
					Interval:   cfg.CheckInterval,
					Executions: executions,
					Thresholds: []int{executions - 1},
					Outputs:    []int{0, 1},
				})
			}
			for q, query := range queries {
				checks = append(checks, core.Check{
					Name:       fmt.Sprintf("prom-%d-%d", g, q),
					Kind:       core.BasicCheck,
					Eval:       promQuery(query),
					Interval:   cfg.CheckInterval,
					Executions: executions,
					Thresholds: []int{executions - 1},
					Outputs:    []int{0, 1},
				})
			}
		}
		return checks
	}

	routing := []core.RoutingConfig{{
		Service: "product",
		Weights: map[string]float64{"product": 100},
	}}
	return &core.Strategy{
		Name: name,
		Services: []core.Service{{
			Name:     "product",
			ProxyURL: tb.ProductProxySrv.URL(),
			Versions: []core.Version{
				{Name: "product", Endpoint: tb.ProductVersions["product"].URL()},
				{Name: "productA", Endpoint: tb.ProductVersions["productA"].URL()},
			},
		}},
		Automaton: core.Automaton{
			Start:  "p1",
			Finals: []string{"end"},
			States: []core.State{
				{ID: "p1", Duration: cfg.PhaseDuration, Checks: mkChecks(),
					Transitions: []string{"p2"}, Routing: routing},
				{ID: "p2", Duration: cfg.PhaseDuration, Checks: mkChecks(),
					Transitions: []string{"end"}, Routing: routing},
				{ID: "end", Routing: routing},
			},
		},
	}
}

// PrintSweep renders a sweep as the paper's figures' underlying tables.
func PrintSweep(w io.Writer, title, xLabel string, points []SweepPoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %8s | %12s %10s | %s\n",
		xLabel, "cpu_min", "cpu_q1", "cpu_med", "cpu_q3", "cpu_max",
		"delay_mean_s", "delay_sd_s", "ok/fail")
	for _, p := range points {
		fmt.Fprintf(w, "%-10d %8.1f %8.1f %8.1f %8.1f %8.1f | %12.3f %10.3f | %d/%d\n",
			p.N, p.CPU.Min, p.CPU.Q1, p.CPU.Median, p.CPU.Q3, p.CPU.Max,
			p.DelayMeanSeconds, p.DelaySDSeconds, p.Completed, p.Failed)
	}
	fmt.Fprintln(w)
}
