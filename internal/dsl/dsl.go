// Package dsl implements the Bifrost domain-specific language (paper
// §4.2.2): a YAML-based, version-controllable description of multi-phase
// live testing strategies, compiled into the formal model of internal/core.
//
// A strategy file has three parts:
//
//	name: product-release
//
//	deployment:                    # static configuration: services, versions,
//	  services:                    # and where each service's Bifrost proxy is
//	    - service: product
//	      proxy: 127.0.0.1:8081    # or proxies: [127.0.0.1:8081, ...] for a
//	      versions:                # multi-replica proxy fleet
//	        - name: product
//	          endpoint: 127.0.0.1:9001
//	        - name: productA
//	          endpoint: 127.0.0.1:9002
//
//	providers:                     # metric provider access information
//	  prometheus: http://127.0.0.1:9090
//
//	strategy:                      # the phases of the release automaton
//	  phases:
//	    - phase: canary
//	      duration: 60s
//	      routes:
//	        - route:
//	            service: product
//	            weights: {product: 90, productA: 5, productB: 5}
//	      checks:
//	        - metric:
//	            name: productA_errors
//	            provider: prometheus
//	            query: proxy_request_errors_total{version="productA"}
//	            intervalTime: 12
//	            intervalLimit: 5
//	            threshold: 5
//	            validator: "<5"
//	        - exception:
//	            name: error_explosion
//	            provider: prometheus
//	            query: rate(request_errors[30s])
//	            intervalTime: 5
//	            intervalLimit: 12
//	            validator: "<100"
//	            fallback: rollback
//	        - burnrate:
//	            name: slo_guard
//	            errors: proxy_request_errors_total{version="productA"}
//	            total: proxy_requests_total{version="productA"}
//	            slo: 99.9
//	            intervalTime: 30
//	            intervalLimit: 20
//	            fallback: rollback
//	      on:
//	        success: darklaunch
//	        failure: rollback
//	    - phase: rollout
//	      gradual:
//	        service: product
//	        stable: product
//	        candidate: productA
//	        from: 5
//	        to: 100
//	        step: 5
//	        interval: 10s
//	      on:
//	        success: done
//	        failure: rollback
//	    - phase: done
//	    - phase: rollback
//	      routes: [...]
//
// Phase transitions can use the success/failure sugar shown above or the
// fully general thresholds/transitions form of the model:
//
//	thresholds: [3, 4]
//	transitions: [rollback, canary, darklaunch]
//
// The paper's route syntax (Listing 2: from/to + traffic filters) is also
// accepted, so published strategies compile unchanged.
//
// Six check elements exist: the paper's metric and exception checks
// (routes.go) plus the statistical verdict checks compare (Welch's
// t-test between baseline and candidate), sequential (an SPRT A/B gate
// that can conclude before the state timer), burnrate (multi-window
// SLO burn-rate rollback), and changepoint (E-Divisive means detection
// of a distribution shift in a metric's trajectory) — see
// verdict_checks.go and docs/strategy-authoring.md for the full field
// reference.
package dsl

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
	"bifrost/internal/target"
)

// Querier answers metric queries for checks; *metrics.Client implements it,
// and tests inject fakes.
type Querier interface {
	Query(ctx context.Context, expr string) (float64, error)
}

var _ Querier = (*metrics.Client)(nil)

// Compiler turns DSL source into executable strategies.
type Compiler struct {
	// Providers maps provider names to queriers, overriding (or standing
	// in for) the file's providers section.
	Providers map[string]Querier
	// DefaultProvider is used by checks that omit "provider".
	DefaultProvider string
}

// Compile is a convenience for a zero-config compiler, resolving providers
// from the file's providers section only.
func Compile(src string) (*core.Strategy, error) {
	return (&Compiler{}).Compile(src)
}

// Compile parses, compiles, and validates one strategy document. Template
// sources (vars / var-transforms / matrix) are accepted as long as they
// expand to exactly one run; use CompileAll for matrices that stamp out
// several.
func (c *Compiler) Compile(src string) (*core.Strategy, error) {
	runs, err := c.CompileAll(src)
	if err != nil {
		return nil, err
	}
	if len(runs) != 1 {
		return nil, fmt.Errorf("dsl: template expands to %d runs; use CompileAll for matrix templates", len(runs))
	}
	return runs[0].Strategy, nil
}

// compileDoc compiles one already-expanded (template-free) document tree.
func (c *Compiler) compileDoc(doc map[string]any) (*core.Strategy, error) {
	d := &decoder{}
	d.unknownKeys(doc, "document", "name", "deployment", "providers", "strategy")

	s := &core.Strategy{Name: d.requireString(doc, "name", "document")}

	providers := c.resolveProviders(d, doc)
	s.Services = compileDeployment(d, doc)
	c.compileStrategy(d, doc, s, providers, c.defaultProviderName(providers))

	if err := d.err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (c *Compiler) resolveProviders(d *decoder, doc map[string]any) map[string]Querier {
	out := make(map[string]Querier, 4)
	for name, q := range c.Providers {
		out[name] = q
	}
	section := d.getMap(doc, "providers", "document")
	for name, v := range section {
		if _, injected := out[name]; injected {
			continue // injected queriers win over file URLs
		}
		baseURL, ok := v.(string)
		if !ok {
			d.errf("providers: %q must map to a base URL string, got %T", name, v)
			continue
		}
		out[name] = &metrics.Client{BaseURL: baseURL}
	}
	return out
}

func (c *Compiler) defaultProviderName(providers map[string]Querier) string {
	if c.DefaultProvider != "" {
		return c.DefaultProvider
	}
	if len(providers) == 1 {
		for name := range providers {
			return name
		}
	}
	return ""
}

func compileDeployment(d *decoder, doc map[string]any) []core.Service {
	dep := d.getMap(doc, "deployment", "document")
	if dep == nil {
		d.errf("document: missing deployment section")
		return nil
	}
	d.unknownKeys(dep, "deployment", "services")
	rawServices := d.getSlice(dep, "services", "deployment")
	if len(rawServices) == 0 {
		d.errf("deployment: no services declared")
		return nil
	}
	services := make([]core.Service, 0, len(rawServices))
	for i, raw := range rawServices {
		ctx := "deployment.services[" + itoa(i) + "]"
		m, ok := raw.(map[string]any)
		if !ok {
			d.errf("%s: must be a mapping", ctx)
			continue
		}
		d.unknownKeys(m, ctx, "service", "proxy", "proxies", "versions", "target", "command")
		svc := core.Service{
			Name:      d.requireString(m, "service", ctx),
			ProxyURL:  d.getString(m, "proxy", ctx),
			ProxyURLs: d.getStringSlice(m, "proxies", ctx),
			Target:    d.getString(m, "target", ctx),
			Command:   d.getStringSlice(m, "command", ctx),
		}
		if svc.ProxyURL != "" && len(svc.ProxyURLs) > 0 {
			d.errf("%s: use either proxy (single replica) or proxies (fleet), not both", ctx)
		}
		validateTarget(d, svc, ctx)
		for j, rawV := range d.getSlice(m, "versions", ctx) {
			vctx := ctx + ".versions[" + itoa(j) + "]"
			vm, ok := rawV.(map[string]any)
			if !ok {
				d.errf("%s: must be a mapping", vctx)
				continue
			}
			d.unknownKeys(vm, vctx, "name", "endpoint", "weight")
			svc.Versions = append(svc.Versions, core.Version{
				Name:     d.requireString(vm, "name", vctx),
				Endpoint: d.requireString(vm, "endpoint", vctx),
				Weight:   d.getFloat(vm, "weight", vctx, 0),
			})
		}
		services = append(services, svc)
	}
	return services
}

// validateTarget checks a service's enactment-target declaration: the
// kind must be registered in the target vocabulary, command targets must
// declare an argv, and flag targets route client-side so proxy endpoints
// make no sense on them.
func validateTarget(d *decoder, svc core.Service, ctx string) {
	switch svc.Target {
	case "", target.KindProxy:
		if len(svc.Command) > 0 {
			d.errf("%s: command is only valid with target: command", ctx)
		}
	case target.KindFlag:
		if len(svc.Command) > 0 {
			d.errf("%s: command is only valid with target: command", ctx)
		}
		if svc.ProxyURL != "" || len(svc.ProxyURLs) > 0 {
			d.errf("%s: target flag routes client-side; remove proxy/proxies", ctx)
		}
	case target.KindCommand:
		if len(svc.Command) == 0 {
			d.errf("%s: target command requires a command argv list", ctx)
		}
	default:
		d.errf("%s: unknown target kind %q (known: %s)", ctx, svc.Target,
			strings.Join(target.KnownKinds(), ", "))
	}
}

func (c *Compiler) compileStrategy(d *decoder, doc map[string]any, s *core.Strategy,
	providers map[string]Querier, defaultProvider string) {

	strat := d.getMap(doc, "strategy", "document")
	if strat == nil {
		d.errf("document: missing strategy section")
		return
	}
	d.unknownKeys(strat, "strategy", "start", "phases")
	rawPhases := d.getSlice(strat, "phases", "strategy")
	if len(rawPhases) == 0 {
		d.errf("strategy: no phases declared")
		return
	}

	pc := &phaseCompiler{d: d, c: c, doc: doc, strategyName: s.Name,
		providers: providers, defaultProvider: defaultProvider}
	for i, raw := range rawPhases {
		ctx := "strategy.phases[" + itoa(i) + "]"
		m, ok := raw.(map[string]any)
		if !ok {
			d.errf("%s: must be a mapping", ctx)
			continue
		}
		pc.compilePhase(m, ctx, i, rawPhases)
	}

	s.Automaton.States = pc.states
	start := d.getString(strat, "start", "strategy")
	if start == "" && len(pc.states) > 0 {
		start = pc.states[0].ID
	}
	s.Automaton.Start = start

	// Final states are the ones with no outgoing transitions.
	finals := make([]string, 0, 2)
	for i := range pc.states {
		if len(pc.states[i].Transitions) == 0 {
			finals = append(finals, pc.states[i].ID)
		}
	}
	sort.Strings(finals)
	s.Automaton.Finals = finals
}

type phaseCompiler struct {
	d               *decoder
	c               *Compiler
	doc             map[string]any // the enclosing document (deployment, providers)
	strategyName    string
	providers       map[string]Querier
	defaultProvider string
	states          []core.State
}

// nextPhaseName returns the name of the phase after index i, used as the
// implicit success target when a phase omits transitions.
func nextPhaseName(d *decoder, rawPhases []any, i int) string {
	if i+1 >= len(rawPhases) {
		return ""
	}
	if m, ok := rawPhases[i+1].(map[string]any); ok {
		return d.getString(m, "phase", "strategy.phases["+itoa(i+1)+"]")
	}
	return ""
}

func (pc *phaseCompiler) compilePhase(m map[string]any, ctx string, idx int, rawPhases []any) {
	d := pc.d
	d.unknownKeys(m, ctx, "phase", "description", "duration", "routes", "checks",
		"on", "thresholds", "transitions", "gradual", "rollouts")

	name := d.requireString(m, "phase", ctx)
	if name == "" {
		return
	}

	if gradual := d.getMap(m, "gradual", ctx); gradual != nil {
		if _, has := m["rollouts"]; has {
			d.errf("%s: use either gradual or rollouts, not both", ctx)
			return
		}
		pc.expandGradual(m, gradual, name, ctx, idx, rawPhases)
		return
	}

	if rollouts := d.getMap(m, "rollouts", ctx); rollouts != nil {
		for _, forbidden := range []string{"checks", "duration"} {
			if _, has := m[forbidden]; has {
				d.errf("%s: %s is not allowed on a rollouts phase (the children are its checks and clock)",
					ctx, forbidden)
			}
		}
		st := core.State{
			ID:          name,
			Description: d.getString(m, "description", ctx),
			Routing:     pc.compileRoutes(m, ctx),
			Sub:         pc.compileSubRollout(rollouts, ctx+".rollouts"),
		}
		pc.attachTransitions(&st, m, ctx, idx, rawPhases)
		pc.states = append(pc.states, st)
		return
	}

	st := core.State{
		ID:          name,
		Description: d.getString(m, "description", ctx),
		Duration:    d.getDuration(m, "duration", ctx),
		Routing:     pc.compileRoutes(m, ctx),
		Checks:      pc.compileChecks(m, ctx),
	}
	pc.attachTransitions(&st, m, ctx, idx, rawPhases)
	pc.states = append(pc.states, st)
}

// attachTransitions wires the phase's δ slice from either the general
// thresholds/transitions form or the success/failure sugar.
func (pc *phaseCompiler) attachTransitions(st *core.State, m map[string]any, ctx string,
	idx int, rawPhases []any) {

	d := pc.d
	thresholds := d.getIntSlice(m, "thresholds", ctx)
	transitions := d.getStringSlice(m, "transitions", ctx)
	on := d.getMap(m, "on", ctx)

	switch {
	case len(transitions) > 0:
		if on != nil {
			d.errf("%s: use either transitions or on, not both", ctx)
		}
		st.Thresholds = thresholds
		st.Transitions = transitions
	case on != nil:
		d.unknownKeys(on, ctx+".on", "success", "failure")
		success := d.getString(on, "success", ctx+".on")
		failure := d.getString(on, "failure", ctx+".on")
		if success == "" {
			success = nextPhaseName(d, rawPhases, idx)
		}
		if success == "" {
			d.errf("%s: on.success missing and no following phase", ctx)
			return
		}
		if failure == "" {
			// Success-only: a pure timed step.
			st.Transitions = []string{success}
			return
		}
		if st.Sub != nil {
			// A sub-rollout state's outcome is the quorum decision: 1
			// (quorum of children passed) or 0.
			st.Thresholds = []int{0}
			st.Transitions = []string{failure, success}
			return
		}
		// success ⇔ every weighted basic check mapped to its success
		// output: outcome == Σ weights. Anything lower is a failure.
		sum, ok := basicWeightSum(st.Checks)
		if !ok {
			d.errf("%s: on success/failure sugar requires integer check weights; use thresholds/transitions", ctx)
			return
		}
		if sum == 0 {
			// No basic checks: a timed step that can only succeed.
			st.Transitions = []string{success}
			return
		}
		st.Thresholds = []int{sum - 1}
		st.Transitions = []string{failure, success}
	default:
		// No transitions at all: final state.
	}
}

// basicWeightSum sums the (defaulted) weights of the checks that gate the
// state's outcome — basic, compare, and sequential checks; interrupt-only
// kinds (exception, burnrate) are excluded — reporting whether the sum is
// integral.
func basicWeightSum(checks []core.Check) (int, bool) {
	var sum float64
	for i := range checks {
		if checks[i].Kind.InterruptOnly() {
			continue
		}
		w := checks[i].Weight
		if w == 0 {
			w = 1
		}
		sum += w
	}
	if sum != float64(int(sum)) {
		return 0, false
	}
	return int(sum), true
}
