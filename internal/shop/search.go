package shop

import (
	"io"
	"net/http"
	"time"

	"bifrost/internal/docstore"
	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
)

// SearchConfig wires one search-service version. The paper's running
// example contrasts the stable "search" (slow but working) with the
// redesigned "fastSearch"; model that with ExtraLatency on the stable
// profile.
type SearchConfig struct {
	Profile  VariantProfile
	DBURL    string
	AuthURL  string
	Registry *metrics.Registry
}

// Search implements the text-based product search service.
type Search struct {
	cfg  SearchConfig
	gate *variantGate
}

// NewSearch creates a search-service version.
func NewSearch(cfg SearchConfig) *Search {
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	s := &Search{cfg: cfg, gate: newVariantGate(cfg.Profile)}
	labels := metrics.Labels{"service": "search", "version": cfg.Profile.Version}
	cfg.Registry.Counter("shop_request_errors_total", labels)
	cfg.Registry.Counter("shop_searches_total", labels)
	return s
}

// Registry exposes the service's metrics.
func (s *Search) Registry() *metrics.Registry { return s.cfg.Registry }

// Handler returns the HTTP interface.
func (s *Search) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /-/healthy", healthy("search"))
	mux.Handle("GET /metrics", s.cfg.Registry.Handler())
	return mux
}

func (s *Search) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	labels := metrics.Labels{"service": "search", "version": s.cfg.Profile.Version}
	s.cfg.Registry.Counter("shop_requests_total", labels).Inc()
	s.cfg.Registry.Counter("shop_searches_total", labels).Inc()

	if err := validateWith(r.Context(), s.cfg.AuthURL, r); err != nil {
		s.cfg.Registry.Counter("shop_auth_denied_total", labels).Inc()
		httpx.WriteError(w, http.StatusUnauthorized, err.Error())
		return
	}
	if !s.gate.pass(w) {
		s.cfg.Registry.Counter("shop_request_errors_total", labels).Inc()
		return
	}

	q := r.URL.Query().Get("q")
	var results []docstore.Document
	filter := docstore.FindRequest{}
	if q != "" {
		filter.Ops = []docstore.OpRequest{{Field: "name", Op: "contains", Value: q}}
	}
	err := httpx.PostJSON(r.Context(), s.cfg.DBURL+"/db/products/find", filter, &results)
	if err != nil {
		s.cfg.Registry.Counter("shop_request_errors_total", labels).Inc()
		httpx.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusOK, results)

	ms := float64(time.Since(start).Microseconds()) / 1000
	s.cfg.Registry.Counter("shop_processing_ms_sum", labels).Add(ms)
	s.cfg.Registry.Counter("shop_processing_ms_count", labels).Inc()
	s.cfg.Registry.Gauge("shop_processing_ms_last", labels).Set(ms)
}

// Frontend is the HTML/JavaScript entry page; the gateway serves it at /.
type Frontend struct{}

// NewFrontend creates the frontend service.
func NewFrontend() *Frontend { return &Frontend{} }

// Handler returns the HTTP interface.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	page := []byte(`<!DOCTYPE html>
<html><head><title>Bifrost Electronics</title></head>
<body>
<h1>Bifrost Electronics</h1>
<p>Consumer electronics, live-tested with Bifrost.</p>
<ul>
  <li><a href="/products">Product catalog</a></li>
  <li><a href="/products/search?q=tv">Search TVs</a></li>
</ul>
</body></html>`)
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(page)
	})
	mux.HandleFunc("GET /-/healthy", healthy("frontend"))
	return mux
}

// Gateway is the nginx substitute: the central entry point that forwards
// requests to the frontend, product, or auth service based on path.
type Gateway struct {
	frontendURL string
	productURL  string
	authURL     string
}

// NewGateway creates the entry-point reverse proxy. productURL should be
// the product service's Bifrost proxy when a strategy is live.
func NewGateway(frontendURL, productURL, authURL string) *Gateway {
	return &Gateway{frontendURL: frontendURL, productURL: productURL, authURL: authURL}
}

// Handler returns the HTTP interface.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/products", g.forward(func() string { return g.productURL }))
	mux.HandleFunc("/products/", g.forward(func() string { return g.productURL }))
	mux.HandleFunc("/auth/", g.forward(func() string { return g.authURL }))
	mux.HandleFunc("GET /-/healthy", healthy("gateway"))
	mux.HandleFunc("/", g.forward(func() string { return g.frontendURL }))
	return mux
}

func (g *Gateway) forward(target func() string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		u := target() + r.URL.Path
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, u, r.Body)
		if err != nil {
			httpx.WriteError(w, http.StatusInternalServerError, err.Error())
			return
		}
		req.Header = r.Header.Clone()
		resp, err := httpx.Client.Do(req)
		if err != nil {
			httpx.WriteError(w, http.StatusBadGateway, err.Error())
			return
		}
		defer resp.Body.Close()
		for k, vv := range resp.Header {
			for _, v := range vv {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		copyBody(w, resp)
	}
}

func copyBody(w http.ResponseWriter, resp *http.Response) {
	_, _ = io.Copy(w, resp.Body)
}
