// Command bifrost-metrics runs the standalone Bifrost metrics provider:
// the Prometheus-shaped time-series store the engine's checks query
// (/api/v1/query, /api/v1/moments), fed by pushed samples (/api/v1/ingest),
// by federated deltas from per-proxy aggregation agents (/api/v1/federate
// — bucket summaries plus mergeable quantile sketches, deduplicated by
// replica/incarnation/sequence so retries never double-count), and
// optionally by scraping exposition endpoints.
//
// Usage:
//
//	bifrost-metrics -listen 127.0.0.1:9090
//	bifrost-metrics -scrape http://127.0.0.1:8081/metrics,http://127.0.0.1:8082/metrics
//
// Retention is bounded per series: -max-samples raw samples (the ring
// buffer) and -staleness for instant-query freshness. -summary-bucket
// controls the width of the pre-aggregation buckets window queries are
// answered from.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bifrost-metrics:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:9090", "address to serve the metrics API on")
	maxSamples := flag.Int("max-samples", metrics.DefaultMaxSamples,
		"raw samples retained per series (ring buffer bound)")
	staleness := flag.Duration("staleness", metrics.DefaultStaleness,
		"how far back instant queries look for a series' latest sample")
	summaryBucket := flag.Duration("summary-bucket", metrics.DefaultSummaryBucket,
		"width of the per-series pre-aggregation buckets (0 disables summaries)")
	scrape := flag.String("scrape", "", "comma-separated exposition endpoints to scrape")
	scrapeInterval := flag.Duration("scrape-interval", 5*time.Second, "scrape period")
	flag.Parse()

	if *maxSamples <= 0 {
		return fmt.Errorf("-max-samples must be positive (got %d)", *maxSamples)
	}
	store := metrics.NewStore(
		metrics.WithMaxSamples(*maxSamples),
		metrics.WithStaleness(*staleness),
		metrics.WithSummaryBucket(*summaryBucket),
	)

	if *scrape != "" {
		scraper := metrics.NewScraper(store, *scrapeInterval, nil)
		for _, target := range strings.Split(*scrape, ",") {
			target = strings.TrimSpace(target)
			if target == "" {
				continue
			}
			u, err := url.Parse(target)
			if err != nil {
				return fmt.Errorf("bad scrape target %q: %v", target, err)
			}
			scraper.AddTarget(metrics.Target{URL: target, Instance: u.Host})
		}
		scraper.Start()
		defer scraper.Stop()
	}

	srv, err := httpx.NewServer(*listen, metrics.NewServer(store).Handler())
	if err != nil {
		return err
	}
	srv.Start()
	log.Printf("bifrost-metrics listening on %s (retaining %d samples/series)",
		srv.Addr(), *maxSamples)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
