package dsl

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// readAuthoringDoc loads docs/strategy-authoring.md, the DSL reference
// these tests keep honest.
func readAuthoringDoc(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "docs", "strategy-authoring.md"))
	if err != nil {
		t.Fatalf("docs/strategy-authoring.md must exist: %v", err)
	}
	return string(src)
}

// TestDocsCheckKindsMatchCompiler fails when docs/strategy-authoring.md
// and the compiler disagree about the set of check kinds: every `### `x“
// heading must be a kind the DSL compiles, and every compiled kind must
// be documented. This is the CI docs job's consistency check — docs
// cannot silently rot when a kind is added or renamed.
func TestDocsCheckKindsMatchCompiler(t *testing.T) {
	doc := readAuthoringDoc(t)
	// Check kinds are documented under headings of the form
	// "### `kind` — summary"; other backticked headings don't match.
	headings := regexp.MustCompile("(?m)^### `([a-z]+)` — ").FindAllStringSubmatch(doc, -1)
	documented := make([]string, 0, len(headings))
	for _, h := range headings {
		documented = append(documented, h[1])
	}
	known := KnownCheckKinds()

	sortedDoc := append([]string(nil), documented...)
	sortedKnown := append([]string(nil), known...)
	sort.Strings(sortedDoc)
	sort.Strings(sortedKnown)
	if strings.Join(sortedDoc, ",") != strings.Join(sortedKnown, ",") {
		t.Fatalf("documented check kinds %v != compiler's %v", documented, known)
	}
}

// yamlBlocks extracts the fenced YAML blocks of a markdown document.
func yamlBlocks(doc string) []string {
	var blocks []string
	for _, m := range regexp.MustCompile("(?s)```yaml\n(.*?)```").FindAllStringSubmatch(doc, -1) {
		blocks = append(blocks, m[1])
	}
	return blocks
}

// TestDocsExamplesCompile compiles every complete strategy in the
// authoring reference (the YAML blocks that begin with `name:`), so the
// documented examples are guaranteed runnable, and checks that each
// check kind is exercised by at least one of them.
func TestDocsExamplesCompile(t *testing.T) {
	doc := readAuthoringDoc(t)
	exercised := map[string]bool{}
	complete := 0
	for i, block := range yamlBlocks(doc) {
		if !strings.HasPrefix(strings.TrimSpace(block), "name:") {
			continue // fragment, not a full strategy
		}
		complete++
		// CompileAll so template examples (vars/matrix) are covered too:
		// every expansion must be a valid standalone run.
		runs, err := CompileAll(block)
		if err != nil {
			t.Errorf("docs yaml block #%d does not compile: %v", i, err)
			continue
		}
		for _, run := range runs {
			s := run.Strategy
			for si := range s.Automaton.States {
				for ci := range s.Automaton.States[si].Checks {
					k := s.Automaton.States[si].Checks[ci].Kind.String()
					// The model kind "basic" is the DSL element "metric".
					if k == "basic" {
						k = "metric"
					}
					exercised[k] = true
				}
			}
		}
	}
	if complete < len(KnownCheckKinds()) {
		t.Errorf("only %d complete strategies in docs, want ≥ one per check kind (%d)",
			complete, len(KnownCheckKinds()))
	}
	for _, kind := range KnownCheckKinds() {
		if !exercised[kind] {
			t.Errorf("no runnable docs example exercises check kind %q", kind)
		}
	}
}

// TestDocsLinkTargetsExist keeps the docs tree's relative references
// valid: the files docs/ and README link to must exist.
func TestDocsLinkTargetsExist(t *testing.T) {
	for _, path := range []string{
		filepath.Join("..", "..", "docs", "architecture.md"),
		filepath.Join("..", "..", "docs", "strategy-authoring.md"),
		filepath.Join("..", "..", "docs", "operations.md"),
		filepath.Join("..", "..", "strategies", "slo-guarded-canary.yaml"),
		filepath.Join("..", "..", "strategies", "fleet-canary.yaml"),
		filepath.Join("..", "..", "strategies", "matrix-canary.yaml"),
		filepath.Join("..", "..", "strategies", "multi-region-canary.yaml"),
	} {
		if _, err := os.Stat(path); err != nil {
			t.Errorf("referenced file missing: %v", err)
		}
	}
	readme, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, link := range []string{"docs/architecture.md", "docs/strategy-authoring.md", "docs/operations.md",
		// The HA runbook is load-bearing for operators rolling a fleet;
		// README must deep-link its section, not just the file. The same
		// goes for the event-pipeline internals and the benchmarking
		// runbook behind the committed BENCH_*.json artifacts.
		"docs/operations.md#running-multiple-engine-replicas",
		"docs/architecture.md#the-event-pipeline",
		"docs/operations.md#benchmarking-and-the-perf-trajectory",
		"docs/architecture.md#hierarchical-rollouts"} {
		if !strings.Contains(string(readme), link) {
			t.Errorf("README does not link %s", link)
		}
	}
	// Deep-linked anchors must resolve to a real heading in their target
	// file (GitHub's anchor: lowercase, spaces to dashes).
	for file, headings := range map[string][]string{
		"architecture.md": {"## The event pipeline", "## Hierarchical rollouts"},
		"operations.md": {
			"## Running multiple engine replicas",
			"## Benchmarking and the perf trajectory",
		},
	} {
		doc, err := os.ReadFile(filepath.Join("..", "..", "docs", file))
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range headings {
			if !strings.Contains(string(doc), h+"\n") {
				t.Errorf("docs/%s lost the %q heading that README deep-links", file, h)
			}
		}
	}
}
