package httpx

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// ProblemContentType is the RFC 9457 media type for typed API errors.
const ProblemContentType = "application/problem+json"

// Problem is the typed error contract of the Bifrost APIs: an RFC 9457
// problem document extended with a stable machine-readable Code. Clients
// dispatch on Code instead of matching error message strings.
type Problem struct {
	// Type is a URI reference identifying the problem class (optional).
	Type string `json:"type,omitempty"`
	// Title is a short human-readable summary of the problem class.
	Title string `json:"title"`
	// Status echoes the HTTP status code of the response.
	Status int `json:"status"`
	// Detail explains this specific occurrence of the problem.
	Detail string `json:"detail,omitempty"`
	// Code is the stable machine-readable error identifier, e.g.
	// "already_running", "stale_resume", "compile_failed".
	Code string `json:"code,omitempty"`
}

// Error implements the error interface.
func (p *Problem) Error() string {
	msg := p.Detail
	if msg == "" {
		msg = p.Title
	}
	if p.Code != "" {
		return fmt.Sprintf("http %d [%s]: %s", p.Status, p.Code, msg)
	}
	return fmt.Sprintf("http %d: %s", p.Status, msg)
}

// WriteProblem writes p as an application/problem+json response. A missing
// Title is filled from the status text.
func WriteProblem(w http.ResponseWriter, p Problem) {
	if p.Status == 0 {
		p.Status = http.StatusInternalServerError
	}
	if p.Title == "" {
		p.Title = http.StatusText(p.Status)
	}
	w.Header().Set("Content-Type", ProblemContentType)
	w.WriteHeader(p.Status)
	_ = json.NewEncoder(w).Encode(p)
}

// ProblemCode extracts the machine-readable code when err is (or wraps) a
// *Problem, and "" otherwise.
func ProblemCode(err error) string {
	var p *Problem
	if errors.As(err, &p) {
		return p.Code
	}
	return ""
}
