package stats

import "sort"

// P2 is the P² (piecewise-parabolic) streaming quantile estimator of Jain
// & Chlamtac (1985): it tracks a single quantile q of a stream with five
// markers and O(1) memory, no sample buffer. The metrics store uses it for
// quantile_over_time over large windows, where sorting a copy of every
// window sample on each query would dominate the hot path.
//
// For streams shorter than five observations the estimate falls back to
// the exact order statistic.
type P2 struct {
	q    float64
	n    int
	pos  [5]float64 // marker positions (1-based)
	des  [5]float64 // desired marker positions
	h    [5]float64 // marker heights (the running quantile estimates)
	init [5]float64 // first five observations, sorted lazily
}

// NewP2 creates an estimator for quantile q ∈ [0, 1].
func NewP2(q float64) *P2 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return &P2{q: q}
}

// Count returns the number of observations seen.
func (p *P2) Count() int { return p.n }

// Add feeds one observation.
func (p *P2) Add(x float64) {
	if p.n < 5 {
		p.init[p.n] = x
		p.n++
		if p.n == 5 {
			sort.Float64s(p.init[:])
			copy(p.h[:], p.init[:])
			for i := 0; i < 5; i++ {
				p.pos[i] = float64(i + 1)
			}
			p.des = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
		}
		return
	}

	// Locate the cell containing x and update extreme heights.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	p.n++
	// Desired positions advance by their quantile-proportional increments.
	inc := [5]float64{0, p.q / 2, p.q, (1 + p.q) / 2, 1}
	for i := 0; i < 5; i++ {
		p.des[i] += inc[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.des[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			hp := p.parabolic(i, sign)
			if p.h[i-1] < hp && hp < p.h[i+1] {
				p.h[i] = hp
			} else {
				p.h[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by d ∈ {−1, +1}.
func (p *P2) parabolic(i int, d float64) float64 {
	return p.h[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback linear height prediction.
func (p *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.h[i] + d*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it returns the exact order statistic (NaN-free for any
// non-empty stream); with none it returns 0.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		vals := make([]float64, p.n)
		copy(vals, p.init[:p.n])
		sort.Float64s(vals)
		idx := int(p.q * float64(p.n-1))
		return vals[idx]
	}
	return p.h[2]
}
