package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	almost(t, "CDF(0, 10)", StudentTCDF(0, 10), 0.5, 1e-12)
	almost(t, "CDF(1.812, 10)", StudentTCDF(1.812, 10), 0.95, 1e-3)
	almost(t, "CDF(2.228, 10)", StudentTCDF(2.228, 10), 0.975, 1e-3)
	almost(t, "CDF(-2.228, 10)", StudentTCDF(-2.228, 10), 0.025, 1e-3)
	almost(t, "CDF(1.645, 1e6)", StudentTCDF(1.645, 1e6), 0.95, 1e-3) // ≈ normal
	almost(t, "CDF(+inf)", StudentTCDF(math.Inf(1), 5), 1, 0)
	almost(t, "CDF(-inf)", StudentTCDF(math.Inf(-1), 5), 0, 0)
}

func TestRegIncBetaEdges(t *testing.T) {
	almost(t, "I_0", RegIncBeta(2, 3, 0), 0, 0)
	almost(t, "I_1", RegIncBeta(2, 3, 1), 1, 0)
	// I_x(1,1) = x (uniform distribution).
	almost(t, "I_.3(1,1)", RegIncBeta(1, 1, 0.3), 0.3, 1e-12)
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	x, a, b := 0.37, 2.5, 4.0
	almost(t, "symmetry", RegIncBeta(a, b, x), 1-RegIncBeta(b, a, 1-x), 1e-12)
}

func TestWelchKnownExample(t *testing.T) {
	// Two samples with clearly different means.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 22.5}
	n1, m1, v1 := summarize(a)
	n2, m2, v2 := summarize(b)
	res, err := Welch(n1, m1, v1, n2, m2, v2)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-checked against an independent Welch computation.
	almost(t, "t", res.T, -2.7219, 0.001)
	almost(t, "df", res.DF, 27.897, 0.01)
	if res.P < 0.95 {
		t.Errorf("one-sided P(mean1>mean2) = %v, want > 0.95 (mean1 is smaller)", res.P)
	}
}

func TestWelchDegenerate(t *testing.T) {
	if _, err := Welch(1, 0, 0, 5, 0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Welch(5, 0, -1, 5, 0, 1); err == nil {
		t.Error("negative variance accepted")
	}
	res, err := Welch(5, 3, 0, 5, 3, 0)
	if err != nil || res.P != 0.5 {
		t.Errorf("equal constants: %+v, %v; want P=0.5", res, err)
	}
	res, _ = Welch(5, 4, 0, 5, 3, 0)
	if res.P != 0 {
		t.Errorf("larger constant mean: P = %v, want 0", res.P)
	}
}

func summarize(xs []float64) (int, float64, float64) {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	return len(xs), mean, m2 / float64(len(xs)-1)
}

func TestSPRTConcludesDegraded(t *testing.T) {
	s, err := NewSPRT(0.01, 0.10, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// 20% failure batches: strong evidence for H1 (degraded).
	var d SPRTDecision
	batches := 0
	for d = s.Decision(); d == Undecided && batches < 100; batches++ {
		d = s.Observe(2, 10)
	}
	if d != AcceptH1 {
		t.Fatalf("decision = %v after %d batches (llr %v)", d, batches, s.LLR())
	}
	if batches > 20 {
		t.Errorf("took %d batches to detect 20%% failures, want early conclusion", batches)
	}
	// Decision is sticky.
	if got := s.Observe(0, 1000); got != AcceptH1 {
		t.Errorf("decision changed after conclusion: %v", got)
	}
}

func TestSPRTConcludesHealthy(t *testing.T) {
	s, _ := NewSPRT(0.01, 0.10, 0.05, 0.05)
	var d SPRTDecision
	batches := 0
	for d = s.Decision(); d == Undecided && batches < 100; batches++ {
		d = s.Observe(0, 20) // zero failures
	}
	if d != AcceptH0 {
		t.Fatalf("decision = %v after %d batches (llr %v)", d, batches, s.LLR())
	}
	if batches > 10 {
		t.Errorf("took %d zero-failure batches to accept H0, want early conclusion", batches)
	}
}

func TestSPRTReset(t *testing.T) {
	s, _ := NewSPRT(0.01, 0.10, 0.05, 0.05)
	for s.Observe(5, 10) == Undecided {
	}
	s.Reset()
	if s.Decision() != Undecided || s.LLR() != 0 {
		t.Errorf("reset did not clear state: %v, llr %v", s.Decision(), s.LLR())
	}
	f, n := s.Totals()
	if f != 0 || n != 0 {
		t.Errorf("totals after reset = %d/%d", f, n)
	}
}

func TestSPRTValidation(t *testing.T) {
	for _, c := range [][4]float64{
		{0.1, 0.1, 0.05, 0.05}, // p0 == p1
		{0.2, 0.1, 0.05, 0.05}, // p0 > p1
		{0, 0.1, 0.05, 0.05},   // p0 == 0
		{0.01, 1, 0.05, 0.05},  // p1 == 1
		{0.01, 0.1, 0, 0.05},   // α == 0
		{0.01, 0.1, 0.05, 1},   // β == 1
	} {
		if _, err := NewSPRT(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("NewSPRT(%v) accepted", c)
		}
	}
}

func TestP2AgainstExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		est := NewP2(q)
		vals := make([]float64, 0, 10000)
		for i := 0; i < 10000; i++ {
			x := rng.NormFloat64()*10 + 100
			est.Add(x)
			vals = append(vals, x)
		}
		sort.Float64s(vals)
		exact := vals[int(q*float64(len(vals)-1))]
		got := est.Value()
		// P² on 10k normal samples should land within a small fraction of
		// the distribution's scale (σ = 10).
		if math.Abs(got-exact) > 1.0 {
			t.Errorf("q=%v: P² = %v, exact = %v", q, got, exact)
		}
	}
}

func TestP2SmallStreams(t *testing.T) {
	est := NewP2(0.5)
	if est.Value() != 0 || est.Count() != 0 {
		t.Error("empty estimator not zero")
	}
	for _, v := range []float64{30, 10, 20} {
		est.Add(v)
	}
	if got := est.Value(); got != 20 {
		t.Errorf("median of {10,20,30} = %v, want exact 20", got)
	}
	if est.Count() != 3 {
		t.Errorf("count = %d", est.Count())
	}
}

func TestP2Monotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 50
	}
	p50, p95 := NewP2(0.5), NewP2(0.95)
	var min, max float64 = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		p50.Add(v)
		p95.Add(v)
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if p50.Value() > p95.Value() {
		t.Errorf("p50 %v > p95 %v", p50.Value(), p95.Value())
	}
	if p95.Value() < min || p95.Value() > max {
		t.Errorf("p95 %v outside [%v, %v]", p95.Value(), min, max)
	}
}
