package metrics

import (
	"errors"
	"testing"
	"time"

	"bifrost/internal/clock"
)

var t0 = time.Date(2016, 5, 1, 12, 0, 0, 0, time.UTC)

func fill(s *Store, name string, labels Labels, start time.Time, step time.Duration, vals ...float64) {
	for i, v := range vals {
		s.Append(name, labels, v, start.Add(time.Duration(i)*step))
	}
}

func TestInstantValueLatest(t *testing.T) {
	s := NewStore()
	fill(s, "request_errors", Labels{"instance": "search:80"}, t0, time.Second, 1, 2, 3)
	got, err := s.InstantValue("request_errors", []LabelMatch{
		{Name: "instance", Op: MatchEqual, Value: "search:80"},
	}, "", t0.Add(time.Minute))
	if err != nil {
		t.Fatalf("InstantValue: %v", err)
	}
	if got != 3 {
		t.Errorf("got %v, want 3 (latest)", got)
	}
}

func TestInstantValueSumsAcrossSeries(t *testing.T) {
	s := NewStore()
	fill(s, "errs", Labels{"version": "A"}, t0, time.Second, 5)
	fill(s, "errs", Labels{"version": "B"}, t0, time.Second, 7)
	got, err := s.InstantValue("errs", nil, "", t0.Add(time.Second))
	if err != nil || got != 12 {
		t.Fatalf("got %v, %v; want 12", got, err)
	}
	avg, err := s.InstantValue("errs", nil, "avg", t0.Add(time.Second))
	if err != nil || avg != 6 {
		t.Fatalf("avg = %v, %v; want 6", avg, err)
	}
	mn, _ := s.InstantValue("errs", nil, "min", t0.Add(time.Second))
	mx, _ := s.InstantValue("errs", nil, "max", t0.Add(time.Second))
	ct, _ := s.InstantValue("errs", nil, "count", t0.Add(time.Second))
	if mn != 5 || mx != 7 || ct != 2 {
		t.Errorf("min/max/count = %v/%v/%v, want 5/7/2", mn, mx, ct)
	}
}

func TestInstantValueStaleness(t *testing.T) {
	s := NewStore(WithStaleness(10 * time.Second))
	fill(s, "m", nil, t0, time.Second, 1)
	if _, err := s.InstantValue("m", nil, "", t0.Add(time.Hour)); !errors.Is(err, ErrNoData) {
		t.Fatalf("stale sample served: err = %v", err)
	}
	if _, err := s.InstantValue("m", nil, "", t0.Add(5*time.Second)); err != nil {
		t.Fatalf("fresh sample rejected: %v", err)
	}
}

func TestInstantValueNoData(t *testing.T) {
	s := NewStore()
	if _, err := s.InstantValue("ghost", nil, "", t0); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestSelectorSemantics(t *testing.T) {
	s := NewStore()
	fill(s, "rt", Labels{"instance": "search:80", "version": "stable"}, t0, time.Second, 100)
	fill(s, "rt", Labels{"instance": "fastsearch:80", "version": "canary"}, t0, time.Second, 50)

	eq := []LabelMatch{{Name: "version", Op: MatchEqual, Value: "canary"}}
	got, err := s.InstantValue("rt", eq, "", t0.Add(time.Second))
	if err != nil || got != 50 {
		t.Fatalf("eq: got %v, %v", got, err)
	}
	ne := []LabelMatch{{Name: "version", Op: MatchNotEqual, Value: "canary"}}
	got, err = s.InstantValue("rt", ne, "", t0.Add(time.Second))
	if err != nil || got != 100 {
		t.Fatalf("ne: got %v, %v", got, err)
	}
	pre := []LabelMatch{{Name: "instance", Op: MatchPrefix, Value: "fast"}}
	got, err = s.InstantValue("rt", pre, "", t0.Add(time.Second))
	if err != nil || got != 50 {
		t.Fatalf("prefix: got %v, %v", got, err)
	}
}

func TestRingBufferEviction(t *testing.T) {
	s := NewStore(WithMaxSamples(4))
	for i := 0; i < 10; i++ {
		s.Append("m", nil, float64(i), t0.Add(time.Duration(i)*time.Second))
	}
	// Only the last 4 samples (6..9) must remain.
	windows := s.RangeSamples("m", nil, time.Hour, t0.Add(time.Hour))
	if len(windows) != 1 {
		t.Fatalf("windows = %d", len(windows))
	}
	w := windows[0]
	if len(w) != 4 || w[0].V != 6 || w[3].V != 9 {
		t.Fatalf("window = %+v, want values 6..9", w)
	}
	// Chronological order must be preserved through wrap-around.
	for i := 1; i < len(w); i++ {
		if !w[i-1].T.Before(w[i].T) {
			t.Fatal("window not chronological")
		}
	}
}

func TestSeriesNamesAndCount(t *testing.T) {
	s := NewStore()
	fill(s, "b_metric", nil, t0, time.Second, 1)
	fill(s, "a_metric", Labels{"x": "1"}, t0, time.Second, 1)
	fill(s, "a_metric", Labels{"x": "2"}, t0, time.Second, 1)
	names := s.SeriesNames()
	if len(names) != 2 || names[0] != "a_metric" || names[1] != "b_metric" {
		t.Errorf("names = %v", names)
	}
	if s.SeriesCount() != 3 {
		t.Errorf("count = %d, want 3", s.SeriesCount())
	}
}

func TestLabelsKeyOrderIndependent(t *testing.T) {
	a := Labels{"x": "1", "y": "2"}
	b := Labels{"y": "2", "x": "1"}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if a.String() != `{x="1",y="2"}` {
		t.Errorf("String = %q", a.String())
	}
	if (Labels{}).String() != "{}" {
		t.Errorf("empty String = %q", Labels{}.String())
	}
}

func TestLabelsMergeClone(t *testing.T) {
	a := Labels{"x": "1"}
	m := a.Merge(Labels{"y": "2"})
	if len(a) != 1 {
		t.Error("Merge mutated receiver")
	}
	if m["x"] != "1" || m["y"] != "2" {
		t.Errorf("merged = %v", m)
	}
	c := a.Clone()
	c["x"] = "mutated"
	if a["x"] != "1" {
		t.Error("Clone shares storage")
	}
}

func TestStoreWithManualClock(t *testing.T) {
	clk := clock.NewManual(t0)
	s := NewStore(WithClock(clk))
	s.Append("m", nil, 42, clk.Now())
	got, err := s.QueryNow("m")
	if err != nil || got != 42 {
		t.Fatalf("QueryNow = %v, %v", got, err)
	}
	clk.Advance(DefaultStaleness + time.Minute)
	if _, err := s.QueryNow("m"); !errors.Is(err, ErrNoData) {
		t.Fatalf("stale QueryNow err = %v", err)
	}
}
