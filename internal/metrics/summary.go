package metrics

import (
	"math"
	"sort"
	"time"

	"bifrost/internal/sketch"
	"bifrost/internal/stats"
)

// DefaultSummaryBucket is the width of the per-series pre-aggregation
// buckets. Each series keeps, next to its raw sample ring, a ring of
// per-bucket summaries (count/sum/sum-of-squares/min/max plus reset-aware
// counter increase); window queries combine whole buckets and only touch
// raw samples in the partial buckets at the window edges, so a wide
// window query does not rescan every raw sample on the hot path.
const DefaultSummaryBucket = time.Second

// aggStats summarizes the samples of one contiguous chronological segment
// of a series. Segments merge associatively (bucket summaries and raw
// edge scans combine into one window aggregate). The second moment is
// kept as the sum of squared deviations from the running mean (Welford's
// algorithm, merged with Chan's parallel update) rather than a raw
// Σv² — the naive form catastrophically cancels for large-magnitude,
// small-spread series and would turn floating-point noise into fake
// variance (or fake certainty) in the compare check's t-test.
type aggStats struct {
	count  int
	sum    float64
	mean   float64
	m2     float64 // Σ (v − mean)², Welford/Chan
	min    float64
	max    float64
	firstV float64
	lastV  float64
	// inc is the reset-aware counter increase accumulated between
	// consecutive samples *within* the segment; the step between two
	// merged segments is added by absorb.
	inc float64
}

// observe folds one sample (chronologically after all previous ones) into
// the segment.
func (a *aggStats) observe(v float64) {
	if a.count == 0 {
		a.min, a.max, a.firstV = v, v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
		// Counter-increase semantics as in counterIncrease: a decrease is
		// a reset and counts from zero.
		if v >= a.lastV {
			a.inc += v - a.lastV
		} else {
			a.inc += v
		}
	}
	a.count++
	a.sum += v
	delta := v - a.mean
	a.mean += delta / float64(a.count)
	a.m2 += delta * (v - a.mean)
	a.lastV = v
}

// absorb folds a chronologically later segment b into a.
func (a *aggStats) absorb(b *aggStats) {
	if b.count == 0 {
		return
	}
	if a.count == 0 {
		*a = *b
		return
	}
	// The boundary step between the segments, then b's internal steps.
	if b.firstV >= a.lastV {
		a.inc += b.firstV - a.lastV + b.inc
	} else {
		a.inc += b.firstV + b.inc
	}
	na, nb := float64(a.count), float64(b.count)
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*na*nb/(na+nb)
	a.mean += delta * nb / (na + nb)
	a.count += b.count
	a.sum += b.sum
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.lastV = b.lastV
}

// bucket is one pre-aggregated summary covering [start, start+width) in
// unix nanoseconds.
type bucket struct {
	start  int64
	firstT int64 // unix nanos of the bucket's first sample
	lastT  int64 // unix nanos of the bucket's last sample
	stats  aggStats
	// width and sk are only set on federated (remote) buckets: local
	// buckets all share the store's bucketWidth and keep raw samples for
	// quantiles, while remote buckets carry their shipping width and the
	// replica's mergeable quantile sketch (see federate.go).
	width int64
	sk    *sketch.Sketch
}

// summarize folds a freshly appended sample into the series' bucket ring.
// Called with the store lock held, after the raw append.
func (sr *series) summarize(sm Sample, width time.Duration, maxBuckets int) {
	if !sr.ordered {
		return // summaries are only maintained for in-order series
	}
	w := int64(width)
	start := floorAlign(sm.T.UnixNano(), w)
	n := sr.blen()
	if n == 0 || sr.bucketAt(n-1).start != start {
		if n > 0 && sr.bucketAt(n-1).start > start {
			// An out-of-order bucket boundary; raw append already cleared
			// sr.ordered for out-of-order samples, but equal-timestamp
			// corner cases land here. Give up on summaries for the series.
			sr.ordered = false
			return
		}
		sr.appendBucket(bucket{start: start, firstT: sm.T.UnixNano()}, maxBuckets)
		n = sr.blen()
	}
	b := sr.bucketAt(n - 1)
	b.stats.observe(sm.V)
	b.lastT = sm.T.UnixNano()
}

func (sr *series) appendBucket(b bucket, maxBuckets int) {
	if len(sr.buckets) < maxBuckets {
		sr.buckets = append(sr.buckets, b)
		return
	}
	sr.buckets[sr.bstart] = b
	sr.bstart = (sr.bstart + 1) % len(sr.buckets)
}

// bucketAt returns the i-th oldest bucket.
func (sr *series) bucketAt(i int) *bucket {
	return &sr.buckets[(sr.bstart+i)%len(sr.buckets)]
}

func (sr *series) blen() int { return len(sr.buckets) }

// searchTime returns the index of the first retained sample with T ≥ t,
// assuming the series is in chronological order.
func (sr *series) searchTime(t time.Time) int {
	return sort.Search(sr.len(), func(i int) bool {
		return !sr.at(i).T.Before(t)
	})
}

// scanStats aggregates the raw samples with from < T ≤ to.
func (sr *series) scanStats(from, to time.Time) aggStats {
	var a aggStats
	if sr.ordered {
		hi := sr.searchTime(to.Add(time.Nanosecond))
		for i := sr.searchTime(from.Add(time.Nanosecond)); i < hi; i++ {
			a.observe(sr.at(i).V)
		}
		return a
	}
	for i := 0; i < sr.len(); i++ {
		sm := sr.at(i)
		if sm.T.After(from) && !sm.T.After(to) {
			a.observe(sm.V)
		}
	}
	return a
}

// windowStats aggregates the samples with from < T ≤ to, combining whole
// pre-aggregated buckets with raw scans of the partial edge buckets. It
// falls back to a raw scan whenever the summaries cannot reproduce the
// raw result exactly (out-of-order series, summaries disabled, or buckets
// that outlived their evicted raw samples).
func (sr *series) windowStats(from, to time.Time, width time.Duration) aggStats {
	if sr.remote {
		return sr.remoteWindowStats(from, to)
	}
	if !sr.ordered || width <= 0 || sr.blen() == 0 || sr.len() == 0 {
		return sr.scanStats(from, to)
	}
	w := int64(width)
	fromN, toN := from.UnixNano(), to.UnixNano()
	t0 := sr.at(0).T.UnixNano() // oldest retained raw sample

	// Full buckets must start after the window opens and after the oldest
	// retained raw sample (a bucket whose first sample was evicted from
	// the raw ring would over-count), and end at or before the window
	// close.
	lo := fromN + 1
	if t0 > lo {
		lo = t0
	}
	leftBound := ceilAlign(lo, w)
	coveredEnd := floorAlign(toN+1, w)
	if leftBound >= coveredEnd {
		return sr.scanStats(from, to)
	}
	// The bucket ring must reach back to leftBound; if older buckets were
	// evicted while their raw samples survive, fall back.
	if sr.bucketAt(0).start > leftBound {
		return sr.scanStats(from, to)
	}

	out := sr.scanStats(from, time.Unix(0, leftBound-1)) // raw left edge: from < T < leftBound
	n := sr.blen()
	first := sort.Search(n, func(i int) bool { return sr.bucketAt(i).start >= leftBound })
	for i := first; i < n; i++ {
		b := sr.bucketAt(i)
		if b.start+w > coveredEnd {
			break
		}
		out.absorb(&b.stats)
	}
	// Raw right edge: coveredEnd ≤ T ≤ to.
	right := sr.scanStats(time.Unix(0, coveredEnd-1), to)
	out.absorb(&right)
	return out
}

func floorAlign(n, w int64) int64 {
	q := n / w
	if n%w < 0 {
		q--
	}
	return q * w
}

func ceilAlign(n, w int64) int64 {
	f := floorAlign(n, w)
	if f == n {
		return n
	}
	return f + w
}

// Moments are the pooled first and second moments of every sample in a
// query window: what a two-sample comparison (Welch's t-test) needs from
// each population. Variance is the unbiased sample variance; it is zero
// when fewer than two samples exist.
type Moments struct {
	Count    int     `json:"count"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
}

func (a aggStats) moments() Moments {
	m := Moments{Count: a.count, Min: a.min, Max: a.max}
	if a.count == 0 {
		return m
	}
	m.Mean = a.mean
	if a.count > 1 && a.m2 > 0 {
		m.Variance = a.m2 / float64(a.count-1)
	}
	return m
}

// windowStatsPerSeries collects each matching series' window aggregate,
// skipping series with no samples in the window.
func (s *Store) windowStatsPerSeries(name string, selector []LabelMatch, d time.Duration, at time.Time) []aggStats {
	matched := s.selectSeries(name, selector)
	out := make([]aggStats, 0, len(matched))
	s.mu.RLock()
	for _, sr := range matched {
		if a := sr.windowStats(at.Add(-d), at, s.bucketWidth); a.count > 0 {
			out = append(out, a)
		}
	}
	s.mu.RUnlock()
	return out
}

// WindowMoments pools the moments of every sample in (at−d, at] across the
// series matching name and selector. It returns ErrNoData when the window
// is empty.
func (s *Store) WindowMoments(name string, selector []LabelMatch, d time.Duration, at time.Time) (Moments, error) {
	per := s.windowStatsPerSeries(name, selector, d, at)
	if len(per) == 0 {
		return Moments{}, ErrNoData
	}
	pooled := per[0]
	for i := range per[1:] {
		// Pooling moments across series needs no chronological order; the
		// inc field of the pooled result is meaningless and unused here.
		pooled.absorb(&per[1+i])
	}
	return pooled.moments(), nil
}

// p2ExactThreshold is the pooled window size up to which quantile queries
// sort exactly; larger windows stream through the P² estimator instead of
// sorting a copy of every sample.
const p2ExactThreshold = 256

// WindowAggregate evaluates one range function (rate, increase, the
// *_over_time family, quantile_over_time with quantile q) over the window
// (at−d, at]. Decomposable aggregations are answered from the per-series
// bucket summaries; quantiles stream the window's raw samples through a
// P² estimator once the pooled sample count exceeds p2ExactThreshold.
func (s *Store) WindowAggregate(fn string, q float64, name string, selector []LabelMatch, d time.Duration, at time.Time) (float64, error) {
	if fn == "quantile_over_time" {
		return s.windowQuantile(name, selector, q, d, at)
	}
	per := s.windowStatsPerSeries(name, selector, d, at)
	if len(per) == 0 {
		return 0, ErrNoData
	}
	switch fn {
	case "rate", "increase":
		var total float64
		for _, a := range per {
			total += a.inc
		}
		if fn == "rate" {
			secs := d.Seconds()
			if secs <= 0 {
				return 0, errZeroWindow
			}
			return total / secs, nil
		}
		return total, nil
	}
	pooled := per[0]
	for i := range per[1:] {
		pooled.absorb(&per[1+i])
	}
	switch fn {
	case "avg_over_time":
		return pooled.sum / float64(pooled.count), nil
	case "min_over_time":
		return pooled.min, nil
	case "max_over_time":
		return pooled.max, nil
	case "sum_over_time":
		return pooled.sum, nil
	case "count_over_time":
		return float64(pooled.count), nil
	case "stddev_over_time":
		return math.Sqrt(pooled.populationVariance()), nil
	case "var_over_time":
		return pooled.populationVariance(), nil
	}
	return 0, errUnknownRangeFn(fn)
}

// populationVariance divides by n, matching Prometheus's
// stddev_over_time/stdvar_over_time semantics — unlike Moments.Variance,
// which is the unbiased (n−1) sample variance Welch's t-test needs.
func (a aggStats) populationVariance() float64 {
	if a.count == 0 || a.m2 <= 0 {
		return 0
	}
	return a.m2 / float64(a.count)
}

// windowQuantile computes quantile_over_time. Purely local windows keep
// the pre-federation behavior: exact (sorting a copy) for small pooled
// windows, the P² streaming estimate for large ones. As soon as any
// matched series is federated, the answer comes from merging the replica
// sketches in the window (plus any local raw samples inserted into the
// merged sketch), so a fleet p99 carries the sketch's relative-error
// guarantee instead of P²'s unbounded cross-replica error — P² markers
// cannot be merged at all.
func (s *Store) windowQuantile(name string, selector []LabelMatch, q float64, d time.Duration, at time.Time) (float64, error) {
	matched := s.selectSeries(name, selector)
	from, to := at.Add(-d), at
	var raw []float64
	var sketches []*sketch.Sketch
	s.mu.RLock()
	for _, sr := range matched {
		if sr.remote {
			sketches = append(sketches, sr.remoteSketches(from, to)...)
			continue
		}
		for _, sm := range sr.window(from, to) {
			raw = append(raw, sm.V)
		}
	}
	s.mu.RUnlock()
	if len(sketches) > 0 {
		merged := sketch.New(sketches[0].Alpha())
		for _, sk := range sketches {
			if err := merged.Merge(sk); err != nil {
				return 0, err
			}
		}
		for _, v := range raw {
			merged.Add(v)
		}
		return merged.Quantile(q), nil
	}
	if len(raw) == 0 {
		return 0, ErrNoData
	}
	if len(raw) <= p2ExactThreshold {
		return quantile(raw, q), nil
	}
	est := stats.NewP2(q)
	for _, v := range raw {
		est.Add(v)
	}
	return est.Value(), nil
}
