package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// splitByRun is the test stand-in for the engine's snapshot splitter: the
// legacy snapshot is a JSON object keyed by run name.
func splitByRun(snapshot []byte) (map[string][]byte, error) {
	var byRun map[string]json.RawMessage
	if err := json.Unmarshal(snapshot, &byRun); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(byRun))
	for run, payload := range byRun {
		out[run] = payload
	}
	return out, nil
}

// seedLegacy writes an interleaved multi-run record stream (with heartbeats)
// directly into root using the pre-partition single-directory layout, and
// returns the raw segment bytes grouped per run exactly as the migration
// must reproduce them: a run's own records plus every heartbeat appended
// after the run first appeared.
func seedLegacy(t *testing.T, root string) map[string][]byte {
	t.Helper()
	j := mustOpen(t, root, Options{FlushInterval: -1})
	type step struct {
		seq int64
		run string // "" = heartbeat, fans out to every run seen so far
	}
	steps := []step{
		{1, "alpha"}, {2, "beta/v2"}, {3, "alpha"}, {4, ""},
		{5, "gamma"}, {6, "beta/v2"}, {7, ""}, {8, "alpha"}, {9, "gamma"},
	}
	for _, s := range steps {
		typ := "event"
		if s.run == "" {
			typ = "heartbeat"
		}
		if err := j.Append(rec(s.seq, s.run, typ)); err != nil {
			t.Fatalf("seed append seq %d: %v", s.seq, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("seed close: %v", err)
	}

	// Re-read the raw bytes and build the per-run expectation from the
	// actual lines on disk, so the comparison below is byte-exact rather
	// than re-marshalled.
	segs, _ := filepath.Glob(filepath.Join(root, segPrefix+"*"))
	sort.Strings(segs)
	want := map[string][]byte{}
	seen := map[string]bool{}
	for _, seg := range segs {
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.SplitAfter(string(raw), "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var r Record
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatalf("seed line does not decode: %v", err)
			}
			if r.Run == "" {
				for run := range seen {
					want[run] = append(want[run], line...)
				}
				continue
			}
			seen[r.Run] = true
			want[r.Run] = append(want[r.Run], line...)
		}
	}
	return want
}

// TestLegacyMigrationSplitsByteExact: opening a Set over a legacy
// single-directory journal splits the interleaved stream into per-run
// partitions whose segment bytes are identical to the legacy lines — no
// re-encoding, no drops — with heartbeats fanned out to every run live at
// that point, and the legacy files preserved under legacy/ as the rollback.
func TestLegacyMigrationSplitsByteExact(t *testing.T) {
	root := t.TempDir()
	want := seedLegacy(t, root)

	set, err := OpenSet(root, SetOptions{Journal: Options{FlushInterval: -1}})
	if err != nil {
		t.Fatalf("OpenSet: %v", err)
	}
	defer set.Close()

	runs, err := set.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if wantRuns := []string{"alpha", "beta/v2", "gamma"}; !equalStrings(runs, wantRuns) {
		t.Fatalf("List = %v, want %v", runs, wantRuns)
	}

	for run, wantRaw := range want {
		dir := filepath.Join(root, runsDir, encodePartitionName(run))
		segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
		var got []byte
		sort.Strings(segs)
		for _, seg := range segs {
			raw, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, raw...)
		}
		if string(got) != string(wantRaw) {
			t.Errorf("partition %q bytes differ from legacy stream:\ngot:\n%swant:\n%s",
				run, got, wantRaw)
		}
	}

	// Replay through the partition API agrees, and the partition stays
	// appendable (fresh journal semantics, not a read-only relic).
	p, err := set.Partition("alpha", 0)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	var seqs []int64
	if err := p.Replay(func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if want := []int64{1, 3, 4, 7, 8}; !equalSeqs(seqs, want) {
		t.Fatalf("alpha replay seqs = %v, want %v", seqs, want)
	}
	if err := p.Append(rec(10, "alpha", "event")); err != nil {
		t.Fatalf("append to migrated partition: %v", err)
	}

	// The legacy files moved wholesale to legacy/; the root keeps none, so
	// a second OpenSet is a no-op rather than a double migration.
	if left, _ := filepath.Glob(filepath.Join(root, segPrefix+"*")); len(left) != 0 {
		t.Fatalf("legacy segments still in root: %v", left)
	}
	if kept, _ := filepath.Glob(filepath.Join(root, legacyDir, segPrefix+"*")); len(kept) == 0 {
		t.Fatal("legacy segments were not preserved under legacy/")
	}
	set.Close()
	set2, err := OpenSet(root, SetOptions{Journal: Options{FlushInterval: -1}})
	if err != nil {
		t.Fatalf("second OpenSet: %v", err)
	}
	defer set2.Close()
	p2, err := set2.Partition("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := p2.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("alpha has %d records after reopen, want 6 (5 migrated + 1 appended)", n)
	}
}

// TestLegacyMigrationSplitsSnapshot: an engine-wide legacy snapshot is split
// per run at the same covered sequence, and refusing to guess — migration
// fails loudly when no splitter is configured.
func TestLegacyMigrationSplitsSnapshot(t *testing.T) {
	root := t.TempDir()
	j := mustOpen(t, root, Options{FlushInterval: -1})
	for i := int64(1); i <= 4; i++ {
		run := "alpha"
		if i%2 == 0 {
			run = "beta"
		}
		if err := j.Append(rec(i, run, "event")); err != nil {
			t.Fatal(err)
		}
	}
	snap := []byte(`{"alpha":{"phase":"canary"},"beta":{"phase":"end"}}`)
	if err := j.Compact(snap, 3); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Append(rec(5, "alpha", "event")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := OpenSet(root, SetOptions{Journal: Options{FlushInterval: -1}}); err == nil {
		t.Fatal("OpenSet migrated a snapshot without a SplitSnapshot")
	}

	set, err := OpenSet(root, SetOptions{
		Journal:       Options{FlushInterval: -1},
		SplitSnapshot: splitByRun,
	})
	if err != nil {
		t.Fatalf("OpenSet with splitter: %v", err)
	}
	defer set.Close()

	for run, wantPayload := range map[string]string{
		`alpha`: `{"phase":"canary"}`,
		`beta`:  `{"phase":"end"}`,
	} {
		p, err := set.Partition(run, 0)
		if err != nil {
			t.Fatalf("Partition %s: %v", run, err)
		}
		payload, seq := p.Snapshot()
		if seq != 3 || string(payload) != wantPayload {
			t.Errorf("%s snapshot = %q @ %d, want %q @ 3", run, payload, seq, wantPayload)
		}
	}

	// Records after the snapshot boundary replayed; alpha got seq 3 and 5.
	p, _ := set.Get("alpha")
	var seqs []int64
	if err := p.Replay(func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := []int64{3, 5}; !equalSeqs(seqs, want) {
		t.Fatalf("alpha post-snapshot replay = %v, want %v", seqs, want)
	}
}

// TestLegacyMigrationRefusesLiveJournal: a still-running old engine holds
// the legacy flock; migrating under it would split a moving stream.
func TestLegacyMigrationRefusesLiveJournal(t *testing.T) {
	root := t.TempDir()
	j := mustOpen(t, root, Options{FlushInterval: -1})
	defer j.Close()
	if err := j.Append(rec(1, "alpha", "event")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSet(root, SetOptions{Journal: Options{FlushInterval: -1}}); !errors.Is(err, ErrLocked) {
		t.Fatalf("OpenSet over a live legacy journal = %v, want ErrLocked", err)
	}
}

// TestPartitionTruncationFuzz extends the torn-tail fuzz to the partition
// layout: chopping one run's segment at every byte offset must yield a clean
// prefix of that run's records on reopen — and must never disturb a sibling
// partition in the same set.
func TestPartitionTruncationFuzz(t *testing.T) {
	seed := t.TempDir()
	set, err := OpenSet(seed, SetOptions{Journal: Options{FlushInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := set.Partition("victim", 0)
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := set.Partition("bystander", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 6; i++ {
		if err := victim.Append(rec(i, "victim", "event")); err != nil {
			t.Fatal(err)
		}
		if err := bystander.Append(rec(i, "bystander", "event")); err != nil {
			t.Fatal(err)
		}
	}
	set.Close()

	victimSeg := filepath.Join(seed, runsDir, encodePartitionName("victim"), segName(1))
	raw, err := os.ReadFile(victimSeg)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(raw); cut++ {
		dir := t.TempDir()
		copyTree(t, seed, dir)
		cutSeg := filepath.Join(dir, runsDir, encodePartitionName("victim"), segName(1))
		if err := os.WriteFile(cutSeg, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := OpenSet(dir, SetOptions{Journal: Options{FlushInterval: -1}})
		if err != nil {
			t.Fatalf("cut %d: OpenSet: %v", cut, err)
		}
		v, err := s.Partition("victim", 0)
		if err != nil {
			t.Fatalf("cut %d: Partition victim: %v", cut, err)
		}
		var n int64
		err = v.Replay(func(r Record) error {
			n++
			if r.Seq != n {
				return fmt.Errorf("cut %d: victim record %d has seq %d", cut, n, r.Seq)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n > 6 {
			t.Fatalf("cut %d: victim replayed %d records from a %d-byte prefix", cut, n, cut)
		}
		// The torn partition stays appendable in a fresh segment.
		if err := v.Append(rec(n+1, "victim", "event")); err != nil {
			t.Fatalf("cut %d: append after tear: %v", cut, err)
		}
		// The sibling partition is whole regardless of where victim tore.
		b, err := s.Partition("bystander", 0)
		if err != nil {
			t.Fatalf("cut %d: Partition bystander: %v", cut, err)
		}
		var m int64
		err = b.Replay(func(r Record) error {
			m++
			if r.Seq != m {
				return fmt.Errorf("cut %d: bystander record %d has seq %d", cut, m, r.Seq)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if m != 6 {
			t.Fatalf("cut %d: bystander replayed %d records, want 6", cut, m)
		}
		s.Close()
	}
}

// copyTree duplicates a seeded set directory so each fuzz iteration mutates
// its own copy.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, raw, 0o644)
	})
	if err != nil {
		t.Fatalf("copy seed tree: %v", err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalSeqs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
