package loadgen

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bifrost/internal/httpx"
)

// stubShop answers the gateway surface loadgen needs.
func stubShop(t *testing.T, delay time.Duration) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /auth/login", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"token": "tok"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"ok": "1"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestRunProducesSteadyTraffic(t *testing.T) {
	ts, hits := stubShop(t, 0)
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		RPS:      200,
		Duration: 500 * time.Millisecond,
		Users:    5,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// ~100 requests expected; allow generous slop for CI jitter.
	if len(res.Samples) < 50 || len(res.Samples) > 150 {
		t.Errorf("samples = %d, want ≈ 100", len(res.Samples))
	}
	if hits.Load() == 0 {
		t.Error("backend never hit")
	}
	// Samples are sorted by offset.
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].Offset < res.Samples[i-1].Offset {
			t.Fatal("samples not sorted")
		}
	}
	st := StatsOf(res.Samples)
	if st.Count != len(res.Samples) || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Mean <= 0 || st.Min <= 0 || st.Max < st.Min || st.Median <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRampUpIncreasesRate(t *testing.T) {
	ts, _ := stubShop(t, 0)
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		RPS:      300,
		RampUp:   400 * time.Millisecond,
		Duration: 400 * time.Millisecond,
		Users:    3,
		Seed:     2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	early := len(res.Window(0, 200*time.Millisecond))
	late := len(res.Window(400*time.Millisecond, 600*time.Millisecond))
	if early >= late {
		t.Errorf("ramp-up not ramping: early=%d late=%d", early, late)
	}
}

func TestMixWeightsRespected(t *testing.T) {
	ts, _ := stubShop(t, 0)
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		RPS:      400,
		Duration: 500 * time.Millisecond,
		Users:    2,
		Seed:     3,
		Mix: []WeightedRequest{
			{Kind: Details, Weight: 3},
			{Kind: Search, Weight: 1},
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	counts := map[RequestKind]int{}
	for _, s := range res.Samples {
		counts[s.Kind]++
	}
	if counts[Buy] != 0 || counts[Products] != 0 {
		t.Errorf("unexpected kinds: %v", counts)
	}
	if counts[Details] <= counts[Search] {
		t.Errorf("mix not respected: %v", counts)
	}
}

func TestErrorsCounted(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /auth/login", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"token": "tok"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteError(w, http.StatusInternalServerError, "boom")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	res, err := Run(context.Background(), Config{
		BaseURL: ts.URL, RPS: 100, Duration: 200 * time.Millisecond, Users: 1, Seed: 4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := StatsOf(res.Samples)
	if st.Errors != st.Count || st.Count == 0 {
		t.Errorf("errors = %d of %d", st.Errors, st.Count)
	}
}

func TestMovingAverageSeries(t *testing.T) {
	r := &Result{}
	for i := 0; i < 100; i++ {
		r.Samples = append(r.Samples, Sample{
			Offset:  time.Duration(i) * 100 * time.Millisecond,
			Latency: time.Duration(20+i%5) * time.Millisecond,
		})
	}
	series := r.MovingAverage(3 * time.Second)
	if len(series) == 0 {
		t.Fatal("no series points")
	}
	for _, p := range series {
		if p.Count > 0 && (p.MeanMillis < 19 || p.MeanMillis > 25) {
			t.Errorf("point %+v outside expected band", p)
		}
	}
}

func TestStatsKnownValues(t *testing.T) {
	samples := []Sample{
		{Latency: 10 * time.Millisecond},
		{Latency: 20 * time.Millisecond},
		{Latency: 30 * time.Millisecond},
		{Latency: 40 * time.Millisecond},
	}
	st := StatsOf(samples)
	if st.Mean != 25 || st.Min != 10 || st.Max != 40 || st.Median != 25 {
		t.Errorf("stats = %+v", st)
	}
	// Sample SD of {10,20,30,40} = sqrt(500/3).
	want := math.Sqrt(500.0 / 3.0)
	if math.Abs(st.SD-want) > 1e-9 {
		t.Errorf("sd = %v, want %v", st.SD, want)
	}
	if StatsOf(nil).Count != 0 {
		t.Error("empty stats wrong")
	}
}

func TestWindowBounds(t *testing.T) {
	r := &Result{Samples: []Sample{
		{Offset: 1 * time.Second},
		{Offset: 2 * time.Second},
		{Offset: 3 * time.Second},
	}}
	w := r.Window(1*time.Second, 3*time.Second) // [1s, 3s)
	if len(w) != 2 {
		t.Errorf("window = %d samples, want 2", len(w))
	}
	st := r.StatsWindow(0, 10*time.Second)
	if st.Count != 3 {
		t.Errorf("count = %d", st.Count)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://127.0.0.1:1", RPS: 10, Duration: time.Millisecond, Users: 1}); err == nil {
		t.Error("unreachable login accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	ts, _ := stubShop(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = Run(ctx, Config{
			BaseURL: ts.URL, RPS: 50, Duration: 30 * time.Second, Users: 1, Seed: 5,
		})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancellation")
	}
}

func TestRequestKindString(t *testing.T) {
	if Buy.String() != "buy" || Search.String() != "search" {
		t.Error("RequestKind strings wrong")
	}
	if RequestKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}
