package metrics

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/httpx"
)

// Server exposes a Store over HTTP with a Prometheus-shaped API:
//
//	GET  /api/v1/query?query=EXPR     → {"status":"success","data":{"value":N}}
//	GET  /api/v1/moments?query=SEL    → window moments of a range selector
//	                                    (count/mean/variance/min/max), the
//	                                    populations of a `compare` check
//	POST /api/v1/ingest               → bulk sample ingestion (JSON)
//	GET  /api/v1/series               → distinct metric names
//	GET  /-/healthy                   → liveness
type Server struct {
	store *Store
}

// NewServer wraps a store in the HTTP API.
func NewServer(store *Store) *Server { return &Server{store: store} }

// queryResponse is the JSON envelope of /api/v1/query.
type queryResponse struct {
	Status string    `json:"status"`
	Data   queryData `json:"data"`
	Error  string    `json:"error,omitempty"`
}

type queryData struct {
	Value float64 `json:"value"`
}

// momentsResponse is the JSON envelope of /api/v1/moments.
type momentsResponse struct {
	Status string  `json:"status"`
	Data   Moments `json:"data"`
	Error  string  `json:"error,omitempty"`
}

// IngestSample is one pushed sample in an ingest request.
type IngestSample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// UnixNanos is the sample time; zero means "now" on the server.
	UnixNanos int64 `json:"unixNanos,omitempty"`
}

// Handler returns the API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/query", s.handleQuery)
	mux.HandleFunc("GET /api/v1/moments", s.handleMoments)
	mux.HandleFunc("POST /api/v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /api/v1/federate", s.handleFederate)
	mux.HandleFunc("GET /api/v1/series", s.handleSeries)
	mux.HandleFunc("GET /-/healthy", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("query")
	if expr == "" {
		httpx.WriteError(w, http.StatusBadRequest, "missing query parameter")
		return
	}
	v, err := s.store.QueryNow(expr)
	if err != nil {
		httpx.WriteJSON(w, http.StatusUnprocessableEntity, queryResponse{
			Status: "error", Error: err.Error(),
		})
		return
	}
	httpx.WriteJSON(w, http.StatusOK, queryResponse{
		Status: "success", Data: queryData{Value: v},
	})
}

func (s *Server) handleMoments(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("query")
	if expr == "" {
		httpx.WriteError(w, http.StatusBadRequest, "missing query parameter")
		return
	}
	name, selector, window, err := ParseRangeSelector(expr)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	m, err := s.store.WindowMoments(name, selector, window, s.store.clk.Now())
	if err != nil {
		httpx.WriteJSON(w, http.StatusUnprocessableEntity, momentsResponse{
			Status: "error", Error: err.Error(),
		})
		return
	}
	httpx.WriteJSON(w, http.StatusOK, momentsResponse{Status: "success", Data: m})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var samples []IngestSample
	if err := httpx.ReadJSON(r, &samples); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	now := s.store.clk.Now()
	for _, sm := range samples {
		t := now
		if sm.UnixNanos != 0 {
			t = time.Unix(0, sm.UnixNanos)
		}
		s.store.Append(sm.Name, Labels(sm.Labels), sm.Value, t)
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]int{"ingested": len(samples)})
}

// handleFederate ingests one delta batch from a federation agent. A
// duplicate batch answers 200 with applied=false (so re-delivery is
// silent); a malformed batch answers 400 so the agent drops it instead of
// retrying forever.
func (s *Server) handleFederate(w http.ResponseWriter, r *http.Request) {
	var batch DeltaBatch
	if err := httpx.ReadJSON(r, &batch); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	applied, err := s.store.ApplyDelta(batch)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusOK, FederateResponse{Applied: applied, Seq: batch.Seq})
}

// FederateResponse acknowledges one delta batch.
type FederateResponse struct {
	Applied bool   `json:"applied"`
	Seq     uint64 `json:"seq"`
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, s.store.SeriesNames())
}

// Client queries a metrics server; this is what the engine's metric
// evaluating functions use, mirroring the paper's "providers: prometheus".
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:9090".
	BaseURL string
}

// Query evaluates expr remotely and returns the scalar result. ErrNoData
// style failures surface as errors with the server's message.
func (c *Client) Query(ctx context.Context, expr string) (float64, error) {
	u := c.BaseURL + "/api/v1/query?query=" + url.QueryEscape(expr)
	var resp queryResponse
	if err := httpx.GetJSON(ctx, u, &resp); err != nil {
		var apiErr *httpx.Error
		if asHTTPError(err, &apiErr) {
			return 0, fmt.Errorf("metrics query %q: %s", expr, apiErr.Message)
		}
		return 0, fmt.Errorf("metrics query %q: %w", expr, err)
	}
	if resp.Status != "success" {
		return 0, fmt.Errorf("metrics query %q: %s", expr, resp.Error)
	}
	return resp.Data.Value, nil
}

// Moments evaluates a range selector like `response_ms{version="x"}[30s]`
// remotely and returns the pooled window moments of the matched samples.
func (c *Client) Moments(ctx context.Context, rangeExpr string) (Moments, error) {
	u := c.BaseURL + "/api/v1/moments?query=" + url.QueryEscape(rangeExpr)
	var resp momentsResponse
	if err := httpx.GetJSON(ctx, u, &resp); err != nil {
		var apiErr *httpx.Error
		if asHTTPError(err, &apiErr) {
			return Moments{}, fmt.Errorf("metrics moments %q: %s", rangeExpr, apiErr.Message)
		}
		return Moments{}, fmt.Errorf("metrics moments %q: %w", rangeExpr, err)
	}
	if resp.Status != "success" {
		return Moments{}, fmt.Errorf("metrics moments %q: %s", rangeExpr, resp.Error)
	}
	return resp.Data, nil
}

// Push ingests samples remotely.
func (c *Client) Push(ctx context.Context, samples []IngestSample) error {
	return httpx.PostJSON(ctx, c.BaseURL+"/api/v1/ingest", samples, nil)
}

// PushDelta ships one federation delta batch to the store's federate
// endpoint.
func (c *Client) PushDelta(ctx context.Context, batch DeltaBatch) (FederateResponse, error) {
	var resp FederateResponse
	err := httpx.PostJSON(ctx, c.BaseURL+"/api/v1/federate", batch, &resp)
	return resp, err
}

// StoreQuerier adapts an in-process Store to the query interfaces the
// DSL's checks use (dsl.Querier and dsl.MomentsQuerier), so an engine and
// its metrics store can be embedded in one process without HTTP.
type StoreQuerier struct {
	Store *Store
}

// Query evaluates expr at the store clock's current time.
func (q StoreQuerier) Query(_ context.Context, expr string) (float64, error) {
	return q.Store.QueryNow(expr)
}

// Moments evaluates a range selector at the store clock's current time.
func (q StoreQuerier) Moments(_ context.Context, rangeExpr string) (Moments, error) {
	name, selector, window, err := ParseRangeSelector(rangeExpr)
	if err != nil {
		return Moments{}, err
	}
	return q.Store.WindowMoments(name, selector, window, q.Store.clk.Now())
}

func asHTTPError(err error, target **httpx.Error) bool {
	for err != nil {
		if e, ok := err.(*httpx.Error); ok {
			*target = e
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Target is one scrape endpoint.
type Target struct {
	// URL is the full exposition endpoint, e.g. "http://host:1234/metrics".
	URL string
	// Instance is added as the "instance" label on every scraped series,
	// e.g. "search:80" — the label the paper's example query selects on.
	Instance string
	// Extra labels merged into every scraped series.
	Extra Labels
}

// Scraper periodically pulls exposition endpoints into a Store, playing
// the role of the Prometheus scrape loop (plus cAdvisor's push, when the
// sysmon package registers its gauges on a scraped registry).
type Scraper struct {
	store    *Store
	interval time.Duration
	clk      clock.Clock

	mu      sync.Mutex
	targets []Target

	stop chan struct{}
	done chan struct{}
}

// NewScraper creates a scraper; call Start to begin scraping.
func NewScraper(store *Store, interval time.Duration, clk clock.Clock) *Scraper {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Scraper{
		store:    store,
		interval: interval,
		clk:      clk,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// AddTarget registers a scrape target (safe while running).
func (s *Scraper) AddTarget(t Target) {
	s.mu.Lock()
	s.targets = append(s.targets, t)
	s.mu.Unlock()
}

// Start launches the scrape loop.
func (s *Scraper) Start() {
	go func() {
		defer close(s.done)
		ticker := s.clk.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C():
				s.ScrapeOnce(context.Background())
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the scrape loop and waits for it to exit.
func (s *Scraper) Stop() {
	close(s.stop)
	<-s.done
}

// ScrapeOnce scrapes every target a single time. Errors are recorded as
// the scrape_errors_total counter rather than failing the loop, because a
// temporarily unreachable service must not kill monitoring.
func (s *Scraper) ScrapeOnce(ctx context.Context) {
	s.mu.Lock()
	targets := make([]Target, len(s.targets))
	copy(targets, s.targets)
	s.mu.Unlock()

	now := s.clk.Now()
	for _, t := range targets {
		if err := s.scrapeTarget(ctx, t, now); err != nil {
			s.store.Append("scrape_errors_total", Labels{"instance": t.Instance}, 1, now)
		}
	}
}

func (s *Scraper) scrapeTarget(ctx context.Context, t Target, now time.Time) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.URL, nil)
	if err != nil {
		return err
	}
	resp, err := httpx.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: status %d", t.URL, resp.StatusCode)
	}
	points, err := ParseExposition(resp.Body)
	if err != nil {
		return err
	}
	for _, p := range points {
		labels := p.Labels
		if t.Instance != "" {
			labels = labels.Merge(Labels{"instance": t.Instance})
		}
		if len(t.Extra) > 0 {
			labels = labels.Merge(t.Extra)
		}
		s.store.Append(p.Name, labels, p.Value, now)
	}
	return nil
}
