package engine

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
)

// latencyFeeder appends candidate latency gauge samples in the background.
// The level is adjustable mid-run, so a test can inject a distribution
// shift at a chosen moment.
type latencyFeeder struct {
	store *metrics.Store
	level atomic.Uint64
	stop  chan struct{}
	done  chan struct{}
}

func feedLatency(store *metrics.Store, level float64) *latencyFeeder {
	f := &latencyFeeder{store: store, stop: make(chan struct{}), done: make(chan struct{})}
	f.level.Store(math.Float64bits(level))
	go func() {
		defer close(f.done)
		labels := metrics.Labels{"version": "candidate"}
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				v := math.Float64frombits(f.level.Load())
				f.store.Append("upstream_ms", labels, v, time.Now())
			case <-f.stop:
				return
			}
		}
	}()
	return f
}

func (f *latencyFeeder) SetLevel(v float64) { f.level.Store(math.Float64bits(v)) }

func (f *latencyFeeder) Stop() {
	close(f.stop)
	<-f.done
}

// TestChangePointInterruptsOnLatencyShift is the acceptance scenario: the
// candidate's latency level jumps mid-phase, the changepoint check detects
// the distribution shift via E-Divisive, and the run jumps straight to the
// fallback with cause "changepoint" — long before the 10s state timer.
func TestChangePointInterruptsOnLatencyShift(t *testing.T) {
	store := metrics.NewStore()
	s := compileWithStore(t, store, verdictStrategyYAML("cp-shift", `
        - changepoint:
            name: latency-shift
            provider: prom
            query: avg_over_time(upstream_ms{version="candidate"}[100ms])
            intervalTime: 25ms
            intervalLimit: 400
            minPoints: 12
            permutations: 199
            confidence: 0.95
            fallback: rollback
`))
	feeder := feedLatency(store, 100)
	defer feeder.Stop()

	eng := New()
	defer eng.Shutdown()
	events, cancel := eng.Subscribe(1024)
	defer cancel()

	start := time.Now()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	// Let the trajectory accumulate a stable baseline, then shift the
	// latency distribution.
	time.Sleep(500 * time.Millisecond)
	feeder.SetLevel(170)

	st := waitDone(t, run)
	if time.Since(start) > 5*time.Second {
		t.Errorf("run took %v, want early changepoint interrupt", time.Since(start))
	}
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "rollback" || st.Path[0].Cause != "changepoint" {
		t.Fatalf("path = %+v, want gate→rollback with cause changepoint", st.Path)
	}

	var concluded bool
	deadline := time.After(5 * time.Second)
	for !concluded {
		select {
		case ev := <-events:
			if ev.Type == EventCheckConcluded {
				concluded = true
				if ev.Check != "latency-shift" || ev.Verdict == nil ||
					ev.Verdict.Decision != core.DecisionFail {
					t.Errorf("check_concluded event = %+v", ev)
				}
				if ev.Verdict != nil && !(ev.Verdict.PValue <= 0.05) {
					t.Errorf("verdict p = %v, want significant (≤ 0.05)", ev.Verdict.PValue)
				}
			}
		case <-deadline:
			t.Fatal("no check_concluded event for the changepoint check")
		}
	}
}

// TestChangePointStationaryStaysInconclusive pins the other half of the
// contract: on stationary traffic the check never concludes, every
// execution is inconclusive, and the changepoint default onInconclusive:
// pass lets the phase promote when its timer expires.
func TestChangePointStationaryStaysInconclusive(t *testing.T) {
	store := metrics.NewStore()
	yaml := verdictStrategyYAML("cp-stationary", `
        - changepoint:
            name: latency-shift
            provider: prom
            query: avg_over_time(upstream_ms{version="candidate"}[100ms])
            intervalTime: 25ms
            intervalLimit: 32
            minPoints: 12
            permutations: 199
            confidence: 0.95
`)
	// Shorten the phase so the run resolves via timer expiry, not a 10s
	// wait: 800ms holds ~32 executions and ~20 E-Divisive scans.
	yaml = strings.Replace(yaml, "duration: 10s", "duration: 800ms", 1)
	s := compileWithStore(t, store, yaml)

	feeder := feedLatency(store, 100) // constant level: no shift to find
	defer feeder.Stop()

	eng := New()
	defer eng.Shutdown()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "done" {
		t.Fatalf("path = %+v, want gate→done (inconclusive changepoint defaults to pass)", st.Path)
	}
	if st.Path[0].Cause == "changepoint" {
		t.Fatalf("cause = changepoint on stationary traffic: %+v", st.Path)
	}
	if len(st.Checks) != 1 {
		t.Fatalf("checks = %+v", st.Checks)
	}
	c := st.Checks[0]
	if c.Kind != "changepoint" || c.Failures != 0 || c.Inconclusive == 0 {
		t.Errorf("check status = %+v, want only inconclusive executions", c)
	}
	if c.Verdict == nil || c.Verdict.Decision != core.DecisionContinue {
		t.Errorf("verdict = %+v, want continue (never concluded)", c.Verdict)
	}
}
