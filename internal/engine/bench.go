package engine

// PublishBench pushes one caller-constructed event through the full publish
// pipeline — sequence stamping, mirror reduction, journal append, and SSE
// fan-out — exactly the way run-loop events travel it. It exists for the
// macro-benchmark harness (benchrunner -experiment bench9), which measures
// the pipeline's throughput without enacting strategies; production code
// paths never call it.
func (e *Engine) PublishBench(ev Event) {
	e.publish(nil, ev)
}
