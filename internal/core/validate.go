package core

import (
	"errors"
	"fmt"
	"sort"
)

// ValidationError collects every structural problem found in a strategy so
// authors can fix them all at once.
type ValidationError struct {
	Strategy string
	Problems []string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("strategy %q: %d validation problem(s): %s",
		e.Strategy, len(e.Problems), joinProblems(e.Problems))
}

func joinProblems(ps []string) string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += "; "
		}
		out += p
	}
	return out
}

// Validate checks the structural well-formedness of a strategy: the
// automaton must be a deterministic finite automaton over the declared
// states, thresholds must be strictly increasing, output mappings total,
// routing configurations must reference declared services and versions, and
// exception fallbacks must exist. Sub-rollout states are validated
// recursively: every child strategy must itself validate, child names must
// not cycle back to an ancestor, and nesting deeper than
// MaxSubRolloutDepth is rejected. It returns nil or a *ValidationError.
func (s *Strategy) Validate() error {
	return s.validate(nil)
}

// validate is the recursive worker behind Validate. ancestors holds the
// strategy names on the nesting path above s (empty at the top level), so
// cycles are detected by name and the nesting level of s is
// len(ancestors)+1.
func (s *Strategy) validate(ancestors []string) error {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if s.Name == "" {
		addf("strategy has no name")
	}

	services := make(map[string]Service, len(s.Services))
	for _, svc := range s.Services {
		if svc.Name == "" {
			addf("service with empty name")
			continue
		}
		if _, dup := services[svc.Name]; dup {
			addf("duplicate service %q", svc.Name)
		}
		services[svc.Name] = svc
		if svc.ProxyURL != "" && len(svc.ProxyURLs) > 0 {
			addf("service %q: both ProxyURL and ProxyURLs set; use one", svc.Name)
		}
		if svc.Target == "command" && len(svc.Command) == 0 {
			addf("service %q: command target without a command", svc.Name)
		}
		if svc.Target != "command" && len(svc.Command) > 0 {
			addf("service %q: command set but target is %q", svc.Name, svc.Target)
		}
		replicas := make(map[string]bool, len(svc.ProxyURLs))
		for _, u := range svc.ProxyURLs {
			if u == "" {
				addf("service %q: empty proxy replica URL", svc.Name)
				continue
			}
			if replicas[u] {
				addf("service %q: duplicate proxy replica %q", svc.Name, u)
			}
			replicas[u] = true
		}
		seen := make(map[string]bool, len(svc.Versions))
		if len(svc.Versions) == 0 {
			addf("service %q has no versions", svc.Name)
		}
		for _, v := range svc.Versions {
			if v.Name == "" {
				addf("service %q: version with empty name", svc.Name)
			}
			if seen[v.Name] {
				addf("service %q: duplicate version %q", svc.Name, v.Name)
			}
			seen[v.Name] = true
		}
	}

	states := make(map[string]*State, len(s.Automaton.States))
	for i := range s.Automaton.States {
		st := &s.Automaton.States[i]
		if st.ID == "" {
			addf("state #%d has empty ID", i)
			continue
		}
		if _, dup := states[st.ID]; dup {
			addf("duplicate state %q", st.ID)
		}
		states[st.ID] = st
	}

	if len(s.Automaton.States) == 0 {
		addf("automaton has no states")
	}
	if _, ok := states[s.Automaton.Start]; s.Automaton.Start == "" || !ok {
		addf("start state %q does not exist", s.Automaton.Start)
	}
	if len(s.Automaton.Finals) == 0 {
		addf("automaton has no final states")
	}
	for _, f := range s.Automaton.Finals {
		if _, ok := states[f]; !ok {
			addf("final state %q does not exist", f)
		}
	}

	for i := range s.Automaton.States {
		st := &s.Automaton.States[i]
		validateState(st, states, services, s.Automaton.IsFinal(st.ID), addf)
		if st.Sub != nil {
			s.validateSubRollout(st, ancestors, addf)
		}
	}

	if len(problems) > 0 {
		sort.Strings(problems)
		return &ValidationError{Strategy: s.Name, Problems: problems}
	}
	return nil
}

// validateSubRollout checks a sub-rollout state's own shape and recurses
// into every child strategy, folding the children's problems into the
// parent's with a per-child prefix.
func (s *Strategy) validateSubRollout(st *State, ancestors []string, addf func(string, ...any)) {
	sr := st.Sub
	if s.Automaton.IsFinal(st.ID) {
		addf("state %q: final state cannot contain a sub-rollout", st.ID)
	}
	if len(st.Checks) > 0 {
		addf("state %q: sub-rollout state cannot have checks (the children are its checks)", st.ID)
	}
	if st.Duration != 0 {
		addf("state %q: sub-rollout state cannot have a duration (the children are its clock)", st.ID)
	}
	if len(sr.Children) == 0 {
		addf("state %q: sub-rollout with no children", st.ID)
	}
	if sr.Quorum < 0 || sr.Quorum > len(sr.Children) {
		addf("state %q: quorum %d out of range for %d children", st.ID, sr.Quorum, len(sr.Children))
	}
	switch sr.OnChildFail {
	case "", ChildFailFallback, ChildFailAbort, ChildFailContinue:
	default:
		addf("state %q: onChildFail %q is not fallback|abort|continue", st.ID, sr.OnChildFail)
	}

	// Nesting depth: s sits at level len(ancestors)+1, its children at one
	// below. Children deeper than MaxSubRolloutDepth are rejected before
	// recursing, which also bounds the recursion itself.
	if len(ancestors)+2 > MaxSubRolloutDepth {
		addf("state %q: sub-rollout nested deeper than %d levels", st.ID, MaxSubRolloutDepth)
		return
	}

	seen := make(map[string]bool, len(sr.Children))
	for i := range sr.Children {
		child := &sr.Children[i]
		if child.Name == "" {
			addf("state %q: sub-rollout child #%d has empty name", st.ID, i)
			continue
		}
		if seen[child.Name] {
			addf("state %q: duplicate sub-rollout child %q", st.ID, child.Name)
		}
		seen[child.Name] = true
		cycle := child.Name == s.Name
		for _, a := range ancestors {
			cycle = cycle || child.Name == a
		}
		if cycle {
			addf("state %q: sub-rollout child %q cycles back to an ancestor strategy", st.ID, child.Name)
			continue
		}
		if child.Strategy == nil {
			addf("state %q: sub-rollout child %q has no strategy", st.ID, child.Name)
			continue
		}
		if child.Strategy.Name != child.Name {
			addf("state %q: sub-rollout child %q names strategy %q", st.ID, child.Name, child.Strategy.Name)
		}
		if child.SuccessFinal != "" && !child.Strategy.Automaton.IsFinal(child.SuccessFinal) {
			addf("state %q: child %q success final %q is not a final state of the child",
				st.ID, child.Name, child.SuccessFinal)
		}
		if err := child.Strategy.validate(append(ancestors, s.Name)); err != nil {
			var verr *ValidationError
			if errors.As(err, &verr) {
				for _, p := range verr.Problems {
					addf("child %q: %s", child.Name, p)
				}
			} else {
				addf("child %q: %v", child.Name, err)
			}
		}
	}
}

func validateState(st *State, states map[string]*State, services map[string]Service,
	isFinal bool, addf func(string, ...any)) {

	if !strictlyIncreasing(st.Thresholds) {
		addf("state %q: thresholds not strictly increasing: %v", st.ID, st.Thresholds)
	}
	if !isFinal {
		if len(st.Transitions) != len(st.Thresholds)+1 {
			addf("state %q: %d transitions for %d thresholds (want %d)",
				st.ID, len(st.Transitions), len(st.Thresholds), len(st.Thresholds)+1)
		}
		if len(st.Checks) == 0 && st.Duration == 0 && st.Sub == nil {
			addf("state %q: non-final state with no checks and no duration", st.ID)
		}
	}
	for _, target := range st.Transitions {
		if _, ok := states[target]; !ok {
			addf("state %q: transition to unknown state %q", st.ID, target)
		}
	}

	checkNames := make(map[string]bool, len(st.Checks))
	for i := range st.Checks {
		c := &st.Checks[i]
		if c.Name == "" {
			addf("state %q: check #%d has empty name", st.ID, i)
		} else if checkNames[c.Name] {
			addf("state %q: duplicate check %q", st.ID, c.Name)
		}
		checkNames[c.Name] = true
		switch c.Kind {
		case BasicCheck:
			if len(c.Thresholds) > 0 && len(c.Outputs) != len(c.Thresholds)+1 {
				addf("state %q check %q: %d outputs for %d thresholds",
					st.ID, c.Name, len(c.Outputs), len(c.Thresholds))
			}
			if !strictlyIncreasing(c.Thresholds) {
				addf("state %q check %q: thresholds not strictly increasing",
					st.ID, c.Name)
			}
		case ExceptionCheck, BurnRateCheck:
			if _, ok := states[c.Fallback]; c.Fallback == "" || !ok {
				addf("state %q check %q: fallback state %q does not exist",
					st.ID, c.Name, c.Fallback)
			}
		case CompareCheck:
		case SequentialCheck, ChangePointCheck:
			// Fallback is optional: set, it must name a real state.
			if c.Fallback != "" {
				if _, ok := states[c.Fallback]; !ok {
					addf("state %q check %q: fallback state %q does not exist",
						st.ID, c.Name, c.Fallback)
				}
			}
		default:
			addf("state %q check %q: invalid kind %d", st.ID, c.Name, int(c.Kind))
		}
		if c.Kind.Statistical() {
			if c.Analyze == nil {
				addf("state %q check %q: %s check without analyzer", st.ID, c.Name, c.Kind)
			}
		} else if c.Eval == nil {
			addf("state %q check %q: no evaluator", st.ID, c.Name)
		}
		if c.Executions > 1 && c.Interval <= 0 {
			addf("state %q check %q: %d executions but no interval",
				st.ID, c.Name, c.Executions)
		}
		// Interrupting kinds only fire their interrupt while the state is
		// executing; without a timer they would run once at the end of the
		// state, where an interrupt has nowhere to go — an emergency brake
		// that can never engage.
		if (c.Kind.InterruptOnly() || c.Kind == SequentialCheck) && c.Interval <= 0 {
			addf("state %q check %q: %s check needs an interval (its interrupt only fires while the state runs)",
				st.ID, c.Name, c.Kind)
		}
		if c.Weight < 0 {
			addf("state %q check %q: negative weight %v", st.ID, c.Name, c.Weight)
		}
	}

	for _, rc := range st.Routing {
		svc, ok := services[rc.Service]
		if !ok {
			addf("state %q: routing for unknown service %q", st.ID, rc.Service)
			continue
		}
		if _, _, err := rc.NormalizedWeights(); err != nil {
			addf("state %q: %v", st.ID, err)
		}
		for name := range rc.Weights {
			if _, ok := svc.FindVersion(name); !ok {
				addf("state %q: routing references unknown version %q of %q",
					st.ID, name, rc.Service)
			}
		}
		if rc.Mode == RouteHeader && rc.Header == "" {
			addf("state %q: header routing for %q without header name", st.ID, rc.Service)
		}
		for _, sh := range rc.Shadows {
			if sh.Percent < 0 || sh.Percent > 100 {
				addf("state %q: shadow percent %v out of [0,100]", st.ID, sh.Percent)
			}
			if sh.Target == "" {
				addf("state %q: shadow rule without target", st.ID)
			} else if _, ok := svc.FindVersion(sh.Target); !ok {
				addf("state %q: shadow target %q is not a version of %q",
					st.ID, sh.Target, rc.Service)
			}
			if sh.Source != "" && sh.Source != "*" {
				if _, ok := svc.FindVersion(sh.Source); !ok {
					addf("state %q: shadow source %q is not a version of %q",
						st.ID, sh.Source, rc.Service)
				}
			}
		}
	}
}

func strictlyIncreasing(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

// ErrNoPath is returned by reachability helpers when no path exists.
var ErrNoPath = errors.New("core: no path")

// ReachableStates returns the set of state IDs reachable from the start
// state by transitions and check fallbacks (exception, burnrate, and
// sequential checks). Sub-rollout states recurse into their children:
// every state of a reachable child strategy appears under the qualified
// key "childName/stateID".
func (s *Strategy) ReachableStates() map[string]bool {
	reach := make(map[string]bool)
	s.reachableStates(reach, "", 1)
	return reach
}

// reachableStates walks one automaton into reach, prefixing every key with
// prefix. depth bounds the sub-rollout recursion so a pointer cycle in an
// unvalidated strategy cannot loop forever.
func (s *Strategy) reachableStates(reach map[string]bool, prefix string, depth int) {
	var visit func(id string)
	visit = func(id string) {
		if reach[prefix+id] {
			return
		}
		st, ok := s.Automaton.State(id)
		if !ok {
			return
		}
		reach[prefix+id] = true
		for _, t := range st.Transitions {
			visit(t)
		}
		for i := range st.Checks {
			if fb := st.Checks[i].Fallback; fb != "" {
				visit(fb)
			}
		}
		if st.Sub != nil && depth < MaxSubRolloutDepth {
			for i := range st.Sub.Children {
				child := &st.Sub.Children[i]
				if child.Strategy != nil {
					child.Strategy.reachableStates(reach, prefix+child.Name+"/", depth+1)
				}
			}
		}
	}
	visit(s.Automaton.Start)
}
