package dsl

import (
	"context"
	"sync"
	"testing"
	"time"

	"bifrost/internal/engine"
)

// degradingQuerier reports healthy metrics for the first several queries,
// then degrades — simulating a version that falls over partway through a
// gradual rollout.
type degradingQuerier struct {
	mu      sync.Mutex
	calls   int
	healthy int // number of initial healthy responses
}

func (d *degradingQuerier) Query(_ context.Context, expr string) (float64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.calls++
	if d.calls <= d.healthy {
		return 0, nil // no errors yet
	}
	return 100, nil // error counter explodes
}

const gradualRollbackStrategy = `
name: degrading-rollout
deployment:
  services:
    - service: svc
      versions:
        - name: old
          endpoint: 127.0.0.1:9001
        - name: new
          endpoint: 127.0.0.1:9002
providers:
  prometheus: http://unused.invalid
strategy:
  phases:
    - phase: roll
      gradual:
        service: svc
        stable: old
        candidate: new
        from: 25
        to: 100
        step: 25
        interval: 80ms
      checks:
        - metric:
            name: errors
            provider: prometheus
            query: request_errors{version="new"}
            intervalTime: 20ms
            intervalLimit: 3
            validator: "<5"
      on:
        success: done
        failure: rollback
    - phase: done
      routes:
        - route:
            service: svc
            weights: {new: 100}
    - phase: rollback
      routes:
        - route:
            service: svc
            weights: {old: 100}
`

// TestGradualRolloutRollsBackWhenChecksDegrade drives a compiled gradual
// rollout through the engine: the first step's checks pass, a later step's
// checks fail, and the strategy must divert to the rollback state.
func TestGradualRolloutRollsBackWhenChecksDegrade(t *testing.T) {
	// 3 executions per step; stay healthy through step one (25%), degrade
	// during step two (50%).
	q := &degradingQuerier{healthy: 4}
	c := &Compiler{Providers: map[string]Querier{"prometheus": q}}
	s, err := c.Compile(gradualRollbackStrategy)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	eng := engine.New()
	defer eng.Shutdown()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := run.Wait(ctx); err != nil {
		t.Fatalf("wait: %v (status %+v)", err, run.Status())
	}

	st := run.Status()
	if st.State != engine.RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	last := st.Path[len(st.Path)-1]
	if last.To != "rollback" {
		t.Fatalf("final transition = %+v, want → rollback; path %+v", last, st.Path)
	}
	// The rollout must have advanced at least one step before failing.
	if st.Path[0].To == "rollback" {
		t.Errorf("rolled back immediately; degradation should hit a later step: %+v", st.Path)
	}
}

// TestGradualRolloutCompletesWhenHealthy is the control: with permanently
// healthy metrics the same strategy walks every step and finishes at done.
func TestGradualRolloutCompletesWhenHealthy(t *testing.T) {
	q := &degradingQuerier{healthy: 1 << 30}
	c := &Compiler{Providers: map[string]Querier{"prometheus": q}}
	s, err := c.Compile(gradualRollbackStrategy)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	eng := engine.New()
	defer eng.Shutdown()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := run.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
	st := run.Status()
	last := st.Path[len(st.Path)-1]
	if last.To != "done" {
		t.Fatalf("final transition = %+v, want → done; path %+v", last, st.Path)
	}
	// 25 → 50 → 75 → 100 → done: four steps, four transitions.
	if len(st.Path) != 4 {
		t.Errorf("transitions = %d, want 4 (%+v)", len(st.Path), st.Path)
	}
}
