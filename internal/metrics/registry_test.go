package metrics

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/httpx"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs", Labels{"service": "product"})
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %v, want 5", c.Value())
	}
	g := r.Gauge("temp", nil)
	g.Set(20)
	g.Add(2.5)
	if g.Value() != 22.5 {
		t.Errorf("gauge = %v, want 22.5", g.Value())
	}
	// Same name+labels returns the same instance.
	if r.Counter("reqs", Labels{"service": "product"}) != c {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("temp", nil) != g {
		t.Error("Gauge not idempotent")
	}
	// Different labels are distinct series.
	c2 := r.Counter("reqs", Labels{"service": "search"})
	if c2 == c {
		t.Error("distinct labels share a counter")
	}
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", Labels{"service": "product", "version": "A"}).Add(42)
	r.Counter("http_requests_total", Labels{"service": "product", "version": "B"}).Add(17)
	r.Gauge("cpu_busy_ratio", Labels{"container": "engine"}).Set(0.625)
	r.Counter("plain_total", nil).Add(3)

	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	text := sb.String()
	if !strings.Contains(text, "# TYPE http_requests_total counter") {
		t.Errorf("missing TYPE line:\n%s", text)
	}

	points, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4\n%s", len(points), text)
	}
	found := false
	for _, p := range points {
		if p.Name == "http_requests_total" && p.Labels["version"] == "A" {
			found = true
			if p.Value != 42 {
				t.Errorf("value = %v, want 42", p.Value)
			}
			if p.Type != "counter" {
				t.Errorf("type = %q, want counter", p.Type)
			}
		}
	}
	if !found {
		t.Error("series version=A not parsed")
	}
}

func TestParseExpositionErrors(t *testing.T) {
	for _, src := range []string{
		"no_value_here",
		`metric{unterminated="x" 5`,
		`metric{x} 5`,
		"metric notanumber",
	} {
		if _, err := ParseExposition(strings.NewReader(src)); err == nil {
			t.Errorf("ParseExposition(%q) succeeded, want error", src)
		}
	}
}

func TestParseExpositionTolerance(t *testing.T) {
	src := `
# HELP something informative
# TYPE m counter
m{a="b"} 1 1462104000000

m 2
`
	points, err := ParseExposition(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	if points[0].Value != 1 || points[1].Value != 2 {
		t.Errorf("values = %v, %v", points[0].Value, points[1].Value)
	}
}

func TestScraperCollectsIntoStore(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("request_errors", nil).Add(4)
	srv, err := httpx.NewServer("127.0.0.1:0", reg.Handler())
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	clk := clock.NewManual(t0)
	store := NewStore(WithClock(clk))
	sc := NewScraper(store, time.Second, clk)
	sc.AddTarget(Target{URL: srv.URL(), Instance: "search:80", Extra: Labels{"job": "shop"}})
	sc.ScrapeOnce(context.Background())

	got, err := store.Query(`request_errors{instance="search:80",job="shop"}`, clk.Now())
	if err != nil || got != 4 {
		t.Fatalf("scraped value = %v, %v; want 4", got, err)
	}
}

func TestScraperRecordsErrors(t *testing.T) {
	clk := clock.NewManual(t0)
	store := NewStore(WithClock(clk))
	sc := NewScraper(store, time.Second, clk)
	sc.AddTarget(Target{URL: "http://127.0.0.1:1/metrics", Instance: "dead:1"})
	sc.ScrapeOnce(context.Background())
	got, err := store.Query(`scrape_errors_total{instance="dead:1"}`, clk.Now())
	if err != nil || got != 1 {
		t.Fatalf("scrape_errors_total = %v, %v; want 1", got, err)
	}
}

func TestScraperStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", nil).Add(1)
	srv, err := httpx.NewServer("127.0.0.1:0", reg.Handler())
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	store := NewStore()
	sc := NewScraper(store, 5*time.Millisecond, clock.Real{})
	sc.AddTarget(Target{URL: srv.URL(), Instance: "i"})
	sc.Start()
	deadline := time.Now().Add(5 * time.Second)
	for store.SeriesCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	sc.Stop() // must not hang, and must wait for the loop to exit
	if store.SeriesCount() == 0 {
		t.Fatal("scraper never scraped")
	}
}
