package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestBench9Smoke runs the macro-bench at toy scale: every stage must
// complete and produce positive figures, and the JSON must carry the three
// trajectory metrics the ROADMAP tracks.
func TestBench9Smoke(t *testing.T) {
	res, err := RunBench9(Bench9Config{
		Events:        300,
		Subscribers:   8,
		ProxyRPS:      120,
		ProxyDuration: 500 * time.Millisecond,
		ReconfigEvery: 50 * time.Millisecond,
		IngestSamples: 5_000,
	})
	if err != nil {
		t.Fatalf("RunBench9: %v", err)
	}
	if res.PipelineEventsPerSec <= 0 || res.PublishEventsPerSec <= 0 {
		t.Errorf("pipeline throughput not measured: %+v", res)
	}
	if res.DeliveredFrames < int64(res.Config.Subscribers) {
		t.Errorf("delivered %d frames, want at least one per subscriber (%d)",
			res.DeliveredFrames, res.Config.Subscribers)
	}
	if res.ProxyRPS <= 0 || res.ProxyP99Ms <= 0 {
		t.Errorf("proxy figures not measured: rps=%v p99=%v", res.ProxyRPS, res.ProxyP99Ms)
	}
	if res.ProxyP99Ms < res.ProxyServiceP99Ms {
		t.Errorf("corrected p99 %.2fms below service p99 %.2fms",
			res.ProxyP99Ms, res.ProxyServiceP99Ms)
	}
	if res.Reconfigs == 0 {
		t.Error("no live reconfigurations happened during the load test")
	}
	if res.IngestSamplesPerSec <= 0 {
		t.Error("ingest throughput not measured")
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("result JSON does not parse: %v", err)
	}
	for _, key := range []string{"pipelineEventsPerSec", "proxyP99Ms", "ingestSamplesPerSec"} {
		v, ok := decoded[key].(float64)
		if !ok || v <= 0 {
			t.Errorf("JSON key %q missing or non-positive: %v", key, decoded[key])
		}
	}
}
