// Tier-2 hierarchical-rollout end-to-end: a parent run fans a release out
// to three per-region child runs, sharded across a three-replica fleet by
// the cluster handler. A metrics stub fails the ap region's gate while eu
// and us pass, so the parent must promote on the 2/3 quorum while ap falls
// back alone. Mid-sub-rollout the replica owning the parent is killed -9:
// a survivor must adopt the parent, re-link the still-running children
// from its replayed journal, and apply the quorum decision exactly once —
// all observed live on an SSE watcher attached through a survivor.
//
// Run with the recovery CI job (no -short): go test ./e2e -race -run TestHier -v
package e2e

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bifrost/e2e/harness"
	"bifrost/internal/engine"
)

// hierYAML is the scheduled document: one parent ("hier") plus children
// hier-eu / hier-us / hier-ap created lazily when the parent enters the
// regions state. The per-region metric gate polls the stub provider every
// 500ms and needs every sample to validate; the exception check trips on
// the first poisoned sample, so the stubbed-out ap region falls back
// within a second while eu and us ride out the full schedule.
const hierYAML = `
name: hier
deployment:
  services:
    - service: shop
      target: flag
      versions:
        - name: stable
          endpoint: shop-stable.${region}.internal:9001
        - name: canary
          endpoint: shop-canary.${region}.internal:9002
providers:
  prometheus: %s
strategy:
  phases:
    - phase: regions
      rollouts:
        regions: [eu, us, ap]
        quorum: 2
        onChildFail: fallback
        strategy:
          phases:
            - phase: canary
              routes:
                - route:
                    service: shop
                    weights: {stable: 90, canary: 10}
              checks:
                - metric:
                    name: errors
                    provider: prometheus
                    query: request_errors{region="${region}"}
                    intervalTime: 500ms
                    intervalLimit: 16
                    threshold: 16
                    validator: "<1"
                - exception:
                    name: error_explosion
                    provider: prometheus
                    query: request_errors{region="${region}"}
                    intervalTime: 500ms
                    intervalLimit: 32
                    validator: "<50"
                    fallback: fallback
              on:
                success: full
                failure: fallback
            - phase: full
              routes:
                - route:
                    service: shop
                    weights: {canary: 100}
            - phase: fallback
              routes:
                - route:
                    service: shop
                    weights: {stable: 100}
      on:
        success: done
        failure: holdback
    - phase: done
    - phase: holdback
`

func TestHierParentKillQuorumSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e; skipped in -short")
	}

	// Metrics stub speaking the provider protocol: the ap region reports a
	// hard failure signal, every other region is clean.
	provider := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v := 0
		if strings.Contains(r.URL.Query().Get("query"), `region="ap"`) {
			v = 100
		}
		fmt.Fprintf(w, `{"status":"success","data":{"value":%d}}`, v)
	}))
	defer provider.Close()

	fleet := harness.StartFleet(t, harness.Options{Replicas: 3, LeaseTTL: leaseTTL})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	client := fleet.Client("r0")

	sts, err := client.ScheduleAll(ctx, fmt.Sprintf(hierYAML, provider.URL))
	if err != nil {
		t.Fatalf("ScheduleAll: %v", err)
	}
	if len(sts) != 1 || sts[0].Strategy != "hier" {
		t.Fatalf("scheduled %v, want exactly the parent run hier", sts)
	}

	// The parent enters its sub-rollout state and schedules the children
	// back through the cluster, which shards them across the fleet. Wait
	// until the region tree is live: eu and us mid-canary (ap may already
	// have tripped its exception gate and fallen back — that is the point).
	children := []string{"hier-eu", "hier-us", "hier-ap"}
	harness.Eventually(t, 20*time.Second, "parent in regions, region tree live", func() bool {
		st, err := client.Get(ctx, "hier")
		if err != nil || st.Current != "regions" || st.State != engine.RunRunning {
			return false
		}
		if len(st.Children) != 3 {
			return false
		}
		for _, c := range []string{"hier-eu", "hier-us"} {
			cst, err := client.Get(ctx, c)
			if err != nil || cst.State != engine.RunRunning {
				return false
			}
		}
		_, err = client.Get(ctx, "hier-ap")
		return err == nil
	})

	owners := ownershipMap(t, fleet)
	victim, ok := owners["hier"]
	if !ok {
		t.Fatalf("no replica owns the parent: %v", owners)
	}
	survivor := ""
	for _, id := range fleet.IDs() {
		if id != victim {
			survivor = id
			break
		}
	}
	t.Logf("parent owned by %s (children: eu=%s us=%s ap=%s), watching via %s",
		victim, owners["hier-eu"], owners["hier-us"], owners["hier-ap"], survivor)

	// SSE watcher on the parent, attached through a survivor so it rides
	// the takeover with Last-Event-ID.
	type seen struct {
		mu          sync.Mutex
		recovered   bool
		completed   bool
		apFellBack  bool
		transitions int
	}
	var ws seen
	events, stopWatch, err := fleet.Client(survivor).Watch(ctx, "hier", 64)
	if err != nil {
		t.Fatalf("Watch hier via %s: %v", survivor, err)
	}
	defer stopWatch()
	go func() {
		for ev := range events {
			ws.mu.Lock()
			switch ev.Type {
			case engine.EventRecovered:
				ws.recovered = true
			case engine.EventCompleted:
				ws.completed = true
			case engine.EventChildTerminal:
				if ev.Region == "ap" && ev.Outcome == 0 {
					ws.apFellBack = true
				}
			case engine.EventTransition:
				if ev.State == "regions" {
					ws.transitions++
				}
			}
			ws.mu.Unlock()
		}
	}()

	// Kill -9 the parent's owner mid-sub-rollout: no shutdown hooks, the
	// lease stays on disk until it expires.
	killedAt := time.Now()
	fleet.Replica(victim).Kill9()
	client = fleet.Client(survivor)

	// A survivor adopts the parent within two lease TTLs (plus sweep
	// slack) and re-links the region tree from its replayed journal.
	adoptBy := killedAt.Add(2*leaseTTL + 3*time.Second)
	harness.Eventually(t, time.Until(adoptBy)+time.Second, "a survivor adopting the parent", func() bool {
		owners := ownershipMap(t, fleet)
		id, ok := owners["hier"]
		return ok && id != victim
	})
	st, err := client.Get(ctx, "hier")
	if err != nil {
		t.Fatalf("post-adopt parent status: %v", err)
	}
	if !st.Recovered {
		t.Errorf("adopted parent does not report Recovered")
	}
	if len(st.Children) != 3 {
		t.Errorf("adopted parent re-linked %d children, want 3: %+v", len(st.Children), st.Children)
	}

	// The rollout finishes on the surviving fleet: eu+us pass, the parent
	// promotes on the 2/3 quorum.
	harness.Eventually(t, 60*time.Second, "parent promoting on quorum", func() bool {
		st, err := client.Get(ctx, "hier")
		return err == nil && st.State == engine.RunCompleted
	})
	st, err = client.Get(ctx, "hier")
	if err != nil {
		t.Fatalf("final parent status: %v", err)
	}
	if st.Current != "done" {
		t.Fatalf("parent finished in %q, want done (path %+v)", st.Current, st.Path)
	}
	last := st.Path[len(st.Path)-1]
	if last.To != "done" || last.Cause != "quorum" {
		t.Errorf("final transition = %+v, want regions→done cause quorum", last)
	}

	// Blast radius: only ap fell back; eu and us promoted to full and were
	// never aborted by the sibling's failure or the takeover.
	harness.Eventually(t, 60*time.Second, "all children terminal", func() bool {
		for _, c := range children {
			cst, err := client.Get(ctx, c)
			if err != nil || cst.State == engine.RunRunning {
				return false
			}
		}
		return true
	})
	for _, c := range []string{"hier-eu", "hier-us"} {
		cst, err := client.Get(ctx, c)
		if err != nil {
			t.Fatalf("status of %s: %v", c, err)
		}
		if cst.State != engine.RunCompleted || cst.Current != "full" {
			t.Errorf("%s finished %s/%s, want completed/full", c, cst.State, cst.Current)
		}
	}
	ap, err := client.Get(ctx, "hier-ap")
	if err != nil {
		t.Fatalf("status of hier-ap: %v", err)
	}
	if ap.State != engine.RunCompleted || ap.Current != "fallback" {
		t.Errorf("hier-ap finished %s/%s, want completed/fallback (its own fallback, not an abort)",
			ap.State, ap.Current)
	}
	var passed, failed int
	for _, c := range st.Children {
		if c.Passed {
			passed++
		}
		if c.Failed {
			failed++
		}
	}
	if passed < 2 || failed != 1 {
		t.Errorf("parent region tree: %d passed / %d failed, want ≥2 / 1: %+v", passed, failed, st.Children)
	}

	// Fencing: across both parent lives the quorum decision was applied
	// exactly once — one transition out of the regions state in the full
	// journaled history.
	history, err := client.RunEvents(ctx, "hier", 0)
	if err != nil {
		t.Fatalf("RunEvents hier: %v", err)
	}
	transitions := 0
	for _, ev := range history {
		if ev.Type == engine.EventTransition && ev.State == "regions" {
			transitions++
		}
	}
	if transitions != 1 {
		t.Errorf("regions state transitioned %d times across takeover, want exactly 1", transitions)
	}

	// The SSE watcher rode through the kill and saw the story end to end:
	// the recovery marker, ap's lone fallback, and the quorum completion.
	harness.Eventually(t, 20*time.Second, "watcher observing recovery, ap fallback, completion", func() bool {
		ws.mu.Lock()
		defer ws.mu.Unlock()
		return ws.recovered && ws.completed && ws.apFellBack
	})
	ws.mu.Lock()
	if ws.transitions > 1 {
		t.Errorf("watcher saw the regions transition %d times (duplicate delivery)", ws.transitions)
	}
	ws.mu.Unlock()
}
