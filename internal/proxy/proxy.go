// Package proxy implements the Bifrost proxy: the per-service routing
// component that live testing rides on (paper §4.1–4.2).
//
// One proxy fronts one service. The Bifrost engine pushes routing
// configurations (traffic weights per version, stickiness, cookie vs header
// mode, dark-launch shadow rules); the proxy enforces them on every request:
//
//   - cookie-based routing: the proxy buckets clients itself, identifying
//     them with a Set-Cookie UUID, optionally pinning the assignment for
//     the duration of the state (sticky sessions, required for A/B tests)
//   - header-based routing: an externally injected header names the version
//   - dark launches: a percentage of traffic to a source version is
//     duplicated to a shadow version whose response is discarded
//
// The proxy also instruments every request (request counts, error counts,
// upstream latency) on a metrics registry so the engine's checks can reason
// about the versions it is routing to.
//
// # Data plane
//
// The hot path is lock-free. The active configuration lives in an
// immutable routeState snapshot behind an atomic pointer (see
// snapshot.go): every request loads the pointer once and works on that
// snapshot — parsed backend URLs, the cumulative-weight selector,
// precompiled shadow rules, and pre-resolved metric handles. SetConfig
// builds a new snapshot off the hot path and swaps it in; in-flight
// requests finish on the snapshot they started with. Randomized draws use
// a pool of per-goroutine generators, and sticky assignments live in a
// sharded, capacity-bounded clock-eviction store (sticky.go), so neither
// a shared rand.Rand nor an unbounded map serializes or sinks the proxy
// under heavy traffic.
//
// docs/architecture.md describes how the proxy, the engine, and the
// metrics provider fit together in a running deployment.
package proxy

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
	"bifrost/internal/uuid"
)

// CookieName is the client re-identification cookie the proxy sets.
const CookieName = "bifrost-id"

// maxShadowQueue bounds the asynchronous shadow-delivery queue; beyond it
// shadow requests are dropped (and counted), never blocking live traffic.
const maxShadowQueue = 1024

// maxBodyBytes bounds buffered request bodies. Shadowing requires the body
// to be replayable, so the proxy reads it fully; e-commerce style requests
// are far below this. Without shadow rules bodies stream through unbuffered
// and this limit does not apply.
const maxBodyBytes = 8 << 20

// Config is the routing configuration the engine pushes to a proxy. It is
// the wire form of one core.RoutingConfig materialized with endpoints.
type Config struct {
	// Service names the fronted service; informational.
	Service string `json:"service"`
	// Generation orders config updates; a proxy rejects configs older
	// than the one it runs.
	Generation int64 `json:"generation"`
	// Backends lists the routable versions with their traffic weights.
	Backends []Backend `json:"backends"`
	// Sticky pins client→version assignments until the next config.
	Sticky bool `json:"sticky"`
	// Mode is "cookie" (default) or "header".
	Mode string `json:"mode,omitempty"`
	// Header is the routing header for header mode, e.g. "X-Bifrost-Group".
	Header string `json:"header,omitempty"`
	// Shadows lists dark-launch duplication rules.
	Shadows []Shadow `json:"shadows,omitempty"`
}

// Backend is one routable version of the fronted service.
type Backend struct {
	Version string  `json:"version"`
	URL     string  `json:"url"`
	Weight  float64 `json:"weight"`
}

// Shadow duplicates Percent% of the traffic served by Source to Target.
type Shadow struct {
	// Source version whose traffic is duplicated; "*" or "" = any.
	Source string `json:"source,omitempty"`
	// Target version receiving the duplicate (must be a backend or have
	// TargetURL set).
	Target string `json:"target"`
	// TargetURL overrides the backend lookup for targets that are not
	// normally routable.
	TargetURL string `json:"targetUrl,omitempty"`
	// Percent of matching requests to duplicate, in [0,100].
	Percent float64 `json:"percent"`
}

// Proxy is a single-service Bifrost proxy. Create with New, route traffic
// through ServeHTTP (admin endpoints live under /_bifrost/), and Close when
// done to drain shadow workers.
type Proxy struct {
	service   string
	transport http.RoundTripper
	registry  *metrics.Registry
	stickyCap int
	// latencyObs, when set, receives every upstream latency sample (name,
	// labels, milliseconds) in addition to the registry instruments — the
	// hook the federation agent's quantile sketches ride on.
	latencyObs func(name string, labels metrics.Labels, ms float64)

	// state is the active routing snapshot; nil until the first valid
	// config. The data plane loads it once per request and never locks.
	state atomic.Pointer[routeState]
	// cfgMu serializes control-plane updates (generation check + swap)
	// only; it is never taken on the request path.
	cfgMu sync.Mutex

	// rngPool hands each goroutine its own generator for weighted and
	// shadow-percent draws; seedBase keeps tests reproducible via WithSeed.
	rngPool  sync.Pool
	seedBase int64
	seedSeq  atomic.Int64

	shadowCh     chan shadowJob
	wg           sync.WaitGroup
	closed       chan struct{}
	closeOnce    sync.Once
	shadowCtx    context.Context
	shadowCancel context.CancelFunc

	adminOnce sync.Once
	adminMux  http.Handler

	// mRequests holds the service-level metric handles (per-version
	// handles live in each snapshot's backendRefs).
	mRequests *metricsSet
}

type shadowJob struct {
	req     *http.Request
	counter *metrics.Counter
}

// Option configures a Proxy.
type Option func(*Proxy)

// WithRegistry attaches the metrics registry the proxy instruments.
func WithRegistry(r *metrics.Registry) Option {
	return func(p *Proxy) { p.registry = r }
}

// WithTransport overrides the upstream round tripper (tests).
func WithTransport(rt http.RoundTripper) Option {
	return func(p *Proxy) { p.transport = rt }
}

// WithSeed makes the proxy's randomized routing decisions reproducible:
// the per-goroutine generators are seeded deterministically from seed.
func WithSeed(seed int64) Option {
	return func(p *Proxy) { p.seedBase = seed }
}

// WithLatencyObserver registers a callback receiving every upstream
// latency observation as a raw sample: the metric name
// ("proxy_upstream_ms"), its service/version labels, and the latency in
// milliseconds. A federation agent hooked up here builds mergeable
// quantile sketches from the full distribution instead of the
// sum/count/last projection the registry keeps. The callback runs on the
// request path and must be cheap and non-blocking.
func WithLatencyObserver(obs func(name string, labels metrics.Labels, ms float64)) Option {
	return func(p *Proxy) { p.latencyObs = obs }
}

// WithStickyCapacity bounds the sticky assignment store to n entries
// (default DefaultStickyCapacity). When full, cold assignments are evicted
// (clock sweep) and counted on proxy_sticky_evictions_total; evicted
// clients are deterministically re-assigned on their next request.
func WithStickyCapacity(n int) Option {
	return func(p *Proxy) { p.stickyCap = n }
}

// New creates a proxy for the named service with an initial configuration.
// cfg may be the zero Config for a proxy that starts unconfigured (requests
// fail 503 until the engine pushes a config).
func New(service string, cfg Config, opts ...Option) (*Proxy, error) {
	shadowCtx, shadowCancel := context.WithCancel(context.Background())
	p := &Proxy{
		service:      service,
		transport:    http.DefaultTransport,
		registry:     metrics.NewRegistry(),
		seedBase:     time.Now().UnixNano(),
		shadowCh:     make(chan shadowJob, maxShadowQueue),
		closed:       make(chan struct{}),
		shadowCtx:    shadowCtx,
		shadowCancel: shadowCancel,
	}
	for _, o := range opts {
		o(p)
	}
	p.rngPool.New = func() any {
		return rand.New(rand.NewSource(p.seedBase + p.seedSeq.Add(1)*0x9E3779B9))
	}
	p.mRequests = newMetricsSet(p.registry, service)
	if len(cfg.Backends) > 0 {
		if err := p.SetConfig(cfg); err != nil {
			shadowCancel()
			return nil, err
		}
	}
	const shadowWorkers = 8
	for i := 0; i < shadowWorkers; i++ {
		p.wg.Add(1)
		go p.shadowWorker()
	}
	return p, nil
}

// Close stops the shadow workers promptly: queued shadow jobs are
// discarded and in-flight shadow requests are cancelled. Shadow responses
// are discarded by design, so dropping them on shutdown loses nothing.
// Close is idempotent.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.shadowCancel()
		p.wg.Wait()
	})
}

// Registry exposes the proxy's metrics registry for scraping.
func (p *Proxy) Registry() *metrics.Registry { return p.registry }

// Service returns the fronted service name.
func (p *Proxy) Service() string { return p.service }

// SetConfig atomically replaces the routing configuration. Configurations
// older than the current generation are rejected; sticky assignments are
// cleared because they are scoped to one state of the release automaton.
// The new snapshot is built off the hot path; in-flight requests complete
// on the snapshot they loaded.
func (p *Proxy) SetConfig(cfg Config) error {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	if cur := p.state.Load(); cur != nil && cfg.Generation < cur.cfg.Generation {
		return fmt.Errorf("proxy %s: %w: %d < %d",
			p.service, ErrStaleGeneration, cfg.Generation, cur.cfg.Generation)
	}
	st, err := p.buildRouteState(cfg)
	if err != nil {
		return err
	}
	p.state.Store(st)
	p.mRequests.generation.Set(float64(cfg.Generation))
	return nil
}

// Config returns a copy of the active configuration.
func (p *Proxy) Config() Config {
	st := p.state.Load()
	if st == nil {
		return Config{}
	}
	cfg := st.cfg
	cfg.Backends = append([]Backend(nil), st.cfg.Backends...)
	cfg.Shadows = append([]Shadow(nil), st.cfg.Shadows...)
	return cfg
}

// Mappings returns the materialized sticky user mappings M of the current
// state, for the dashboard and for tests of the formal model's ⟨u,v,sticky⟩
// triples.
func (p *Proxy) Mappings() []core.UserMapping {
	st := p.state.Load()
	if st == nil {
		return []core.UserMapping{} // non-nil: /_bifrost/mappings serves []
	}
	return st.sticky.mappings()
}

var _ http.Handler = (*Proxy)(nil)

// ServeHTTP routes one request according to the active configuration.
// Admin endpoints are served under /_bifrost/ (see Handler in admin.go).
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/_bifrost/") {
		p.adminHandler().ServeHTTP(w, r)
		return
	}
	p.routeRequest(w, r)
}

func (p *Proxy) routeRequest(w http.ResponseWriter, r *http.Request) {
	st := p.state.Load()
	if st == nil {
		p.mRequests.unrouted.Inc()
		http.Error(w, "no routable backend configured", http.StatusServiceUnavailable)
		return
	}

	// Shadowing needs a replayable body; without shadow rules the body
	// streams straight through to the upstream, unbuffered and unbounded.
	var body []byte
	buffered := false
	if len(st.shadows) > 0 {
		var err error
		body, err = readReplayableBody(r)
		if err != nil {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return
		}
		buffered = true
	}

	version, ref, setCookie := p.decide(st, r)
	if setCookie != "" {
		http.SetCookie(w, &http.Cookie{Name: CookieName, Value: setCookie, Path: "/"})
	}

	p.scheduleShadows(st, r, body, version)

	outReq := upstreamRequest(r, ref.url, body, buffered)
	start := time.Now()
	resp, err := p.transport.RoundTrip(outReq)
	observe(ref.m, time.Since(start), resp, err)
	if err != nil {
		http.Error(w, "upstream error: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	copyEndToEndHeader(w.Header(), resp.Header)
	w.Header().Set("X-Bifrost-Version", version)
	w.WriteHeader(resp.StatusCode)
	copyResponseBody(w, resp)
}

// decide picks the version for this request on one routing snapshot. It
// returns the chosen version, its backend ref, and a cookie value to set
// (when a new client ID was minted). It takes no locks: sticky lookups hit
// the sharded store, weighted draws use a pooled generator.
func (p *Proxy) decide(st *routeState, r *http.Request) (string, *backendRef, string) {
	// Header-based routing: the proxy acts solely on its configuration;
	// the header is injected elsewhere in the process (paper §4.2.2).
	if st.cfg.Mode == "header" {
		if ref, ok := st.backends[r.Header.Get(st.cfg.Header)]; ok {
			return ref.version, ref, ""
		}
		// No (or unknown) group header: fall through to weighted routing.
	}

	id, newCookie := clientID(r)

	if st.cfg.Sticky {
		if v, ok := st.sticky.get(id); ok {
			if ref, ok := st.backends[v]; ok {
				return v, ref, newCookie
			}
		}
		v := st.selector.Assign(id)
		st.sticky.put(id, v)
		return v, st.backends[v], newCookie
	}

	// Non-sticky: every request runs through the decision process again
	// with a fresh weighted draw.
	v := st.selector.Pick(p.randFloat())
	return v, st.backends[v], newCookie
}

// randFloat draws from a pooled per-goroutine generator.
func (p *Proxy) randFloat() float64 {
	rng := p.rngPool.Get().(*rand.Rand)
	x := rng.Float64()
	p.rngPool.Put(rng)
	return x
}

// clientID extracts the UUID cookie or mints a new one.
func clientID(r *http.Request) (id string, newCookie string) {
	if c, err := r.Cookie(CookieName); err == nil && uuid.Valid(c.Value) {
		return c.Value, ""
	}
	u, err := uuid.NewV4()
	if err != nil {
		// Entropy failure: fall back to a time-based pseudo ID rather
		// than refusing traffic.
		id := strconv.FormatInt(time.Now().UnixNano(), 36)
		return id, id
	}
	s := u.String()
	return s, s
}

// scheduleShadows enqueues dark-launch duplicates for the request. Rules
// were precompiled at snapshot build time, so this only draws percentages
// and enqueues.
func (p *Proxy) scheduleShadows(st *routeState, r *http.Request, body []byte, servedVersion string) {
	for i := range st.shadows {
		sh := &st.shadows[i]
		if sh.source != "" && sh.source != "*" && sh.source != servedVersion {
			continue
		}
		if sh.percent < 100 && p.randFloat()*100 >= sh.percent {
			continue
		}
		req := shadowRequest(p.shadowCtx, r, sh.url, body)
		select {
		case p.shadowCh <- shadowJob{req: req, counter: sh.counter}:
		default:
			p.mRequests.shadowDropped.Inc()
		}
	}
}

func (p *Proxy) shadowWorker() {
	defer p.wg.Done()
	for {
		select {
		case job := <-p.shadowCh:
			resp, err := p.transport.RoundTrip(job.req)
			if err == nil {
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
				_ = resp.Body.Close()
			}
			job.counter.Inc()
		case <-p.closed:
			return
		}
	}
}

// observe records one upstream exchange on the snapshot's pre-resolved
// handles; no registry map lookups on the request path.
func observe(m *versionMetrics, elapsed time.Duration, resp *http.Response, err error) {
	m.requests.Inc()
	ms := float64(elapsed.Microseconds()) / 1000.0
	m.msSum.Add(ms)
	m.msCount.Inc()
	m.msLast.Set(ms)
	if m.record != nil {
		m.record(ms)
	}
	if err != nil || (resp != nil && resp.StatusCode >= 500) {
		m.errors.Inc()
	}
}

type metricsSet struct {
	unrouted      *metrics.Counter
	shadowDropped *metrics.Counter
	stickyEvicted *metrics.Counter
	generation    *metrics.Gauge
}

func newMetricsSet(r *metrics.Registry, service string) *metricsSet {
	labels := metrics.Labels{"service": service}
	return &metricsSet{
		unrouted:      r.Counter("proxy_unrouted_total", labels),
		shadowDropped: r.Counter("proxy_shadow_dropped_total", labels),
		stickyEvicted: r.Counter("proxy_sticky_evictions_total", labels),
		generation:    r.Gauge("proxy_config_generation", labels),
	}
}

// readReplayableBody drains the request body into memory so it can be sent
// both to the chosen backend and to shadow targets.
func readReplayableBody(r *http.Request) ([]byte, error) {
	if r.Body == nil || r.Body == http.NoBody {
		return nil, nil
	}
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > maxBodyBytes {
		return nil, errors.New("proxy: body too large")
	}
	return body, nil
}

// upstreamRequest builds the live upstream request. With a buffered body
// (shadowing active) it replays the bytes; otherwise the inbound body
// streams through directly. The request inherits the client's context so
// a disconnect cancels the upstream exchange.
func upstreamRequest(r *http.Request, target *url.URL, body []byte, buffered bool) *http.Request {
	var rd io.Reader
	var length int64
	if buffered {
		if len(body) > 0 {
			rd = bytes.NewReader(body)
		}
		length = int64(len(body))
	} else if r.Body != nil && r.Body != http.NoBody {
		rd = r.Body
		length = r.ContentLength
	}
	out := buildRequest(r.Context(), r, target, rd)
	out.ContentLength = length
	return out
}

// shadowRequest builds a dark-launch duplicate carrying the buffered body,
// bound to the proxy's shadow context (cancelled on Close).
func shadowRequest(ctx context.Context, r *http.Request, target *url.URL, body []byte) *http.Request {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	out := buildRequest(ctx, r, target, rd)
	out.ContentLength = int64(len(body))
	return out
}

// buildRequest assembles an outbound request for target from the inbound
// one: rewritten URL, end-to-end headers only, X-Forwarded-For appended.
func buildRequest(ctx context.Context, r *http.Request, target *url.URL, body io.Reader) *http.Request {
	outURL := *target
	outURL.Path = singleJoin(target.Path, r.URL.Path)
	outURL.RawQuery = r.URL.RawQuery
	out, _ := http.NewRequestWithContext(ctx, r.Method, outURL.String(), body)
	out.Header = make(http.Header, len(r.Header))
	copyEndToEndHeader(out.Header, r.Header)
	if prior := r.Header.Get("X-Forwarded-For"); prior != "" {
		out.Header.Set("X-Forwarded-For", prior+", "+remoteIP(r))
	} else if ip := remoteIP(r); ip != "" {
		out.Header.Set("X-Forwarded-For", ip)
	}
	return out
}

// copyResponseBody relays the upstream body. Responses of unknown length
// (chunked — SSE and other incremental streams) are flushed chunk by
// chunk so data reaches the client as it arrives instead of sitting in
// the ResponseWriter's buffer; fixed-length responses take the plain copy
// path.
func copyResponseBody(w http.ResponseWriter, resp *http.Response) {
	if resp.ContentLength >= 0 {
		_, _ = io.Copy(w, resp.Body)
		return
	}
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			// ErrNotSupported (e.g. a plain recorder) degrades to
			// buffered copying; anything else ends the relay below.
			_ = rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

func remoteIP(r *http.Request) string {
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i > 0 {
		host = host[:i]
	}
	return host
}

func singleJoin(a, b string) string {
	switch {
	case a == "" || a == "/":
		if b == "" {
			return "/"
		}
		return b
	case strings.HasSuffix(a, "/") && strings.HasPrefix(b, "/"):
		return a + b[1:]
	case !strings.HasSuffix(a, "/") && !strings.HasPrefix(b, "/") && b != "":
		return a + "/" + b
	default:
		return a + b
	}
}

// hopByHopHeaders is the RFC 9110 §7.6.1 connection-scoped set; these
// fields describe one hop and must not be forwarded by an intermediary.
var hopByHopHeaders = []string{
	"Connection",
	"Keep-Alive",
	"Proxy-Authenticate",
	"Proxy-Authorization",
	"Proxy-Connection", // non-standard but widely sent
	"Te",
	"Trailer",
	"Transfer-Encoding",
	"Upgrade",
}

// copyEndToEndHeader copies src into dst, dropping hop-by-hop fields and
// any field nominated by src's Connection header.
func copyEndToEndHeader(dst, src http.Header) {
	var connNamed map[string]bool
	for _, f := range src.Values("Connection") {
		for _, name := range strings.Split(f, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if connNamed == nil {
				connNamed = make(map[string]bool, 2)
			}
			connNamed[http.CanonicalHeaderKey(name)] = true
		}
	}
	for k, vv := range src {
		if isHopByHop(k) || connNamed[k] {
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

func isHopByHop(canonicalKey string) bool {
	for _, h := range hopByHopHeaders {
		if canonicalKey == h {
			return true
		}
	}
	return false
}
