// Package engine implements the Bifrost engine: the control plane that
// enacts release strategies (paper §4.1).
//
// The engine "executes the state machine of the formal release model": for
// every enacted strategy it walks the automaton, runs each state's checks
// on their timers, aggregates weighted outcomes, fires the transition
// function δ, and reconfigures the affected Bifrost proxies whenever a
// state change happens. Many strategies run in parallel — the paper's
// scalability evaluation (§5.2) drives exactly this code path.
//
// Statistical checks carry a typed core.Verdict through the same
// machinery: verdicts surface in run status and engine events, a
// concluding sequential gate or a tripped burn-rate guard interrupts the
// state ahead of its timer (check.go), and operators can pause, resume,
// or override any gate manually (run.go).
//
// Runs are exposed as lifecycle resources by the REST API v2 (api.go):
// schedule with dry-run analysis, pause/resume with generation-checked
// resumes, manual promote/rollback, per-run event history, and a live
// Server-Sent-Events stream shared by the CLI and the dashboard.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/metrics"
)

// Common engine errors. The API layer maps each to a machine-readable
// problem+json code, so clients dispatch on these rather than on message
// strings.
var (
	// ErrAlreadyRunning is returned by Enact when a strategy with the
	// same name is currently executing.
	ErrAlreadyRunning = errors.New("engine: strategy already running")
	// ErrNotFound is returned when referencing an unknown strategy.
	ErrNotFound = errors.New("engine: strategy not found")
	// ErrFinished is returned by operator controls on a finished run.
	ErrFinished = errors.New("engine: run already finished")
	// ErrNotPaused is returned by Resume when the run is not paused.
	ErrNotPaused = errors.New("engine: run is not paused")
	// ErrAlreadyPaused is returned by Pause on an already-paused run.
	ErrAlreadyPaused = errors.New("engine: run already paused")
	// ErrStaleResume is returned when a resume carries a pause generation
	// that is no longer current (another pause/resume cycle intervened).
	ErrStaleResume = errors.New("engine: stale resume")
	// ErrUnknownState is returned when a manual gate decision names a state
	// outside the strategy's automaton (or none can be inferred).
	ErrUnknownState = errors.New("engine: unknown automaton state")
)

// Engine enacts release strategies. Create with New; Shutdown aborts every
// run and waits for the run loops to exit.
type Engine struct {
	clk          clock.Clock
	registry     *metrics.Registry
	configurator Configurator
	bus          *eventBus

	mu   sync.Mutex
	runs map[string]*Run

	generation atomic.Int64
	wg         sync.WaitGroup

	mActive      *metrics.Gauge
	mEnacted     *metrics.Counter
	mTransitions *metrics.Counter
	mChecks      *metrics.Counter
}

// Option configures an Engine.
type Option func(*Engine)

// WithClock injects the clock driving timers (tests use clock.Manual).
func WithClock(c clock.Clock) Option {
	return func(e *Engine) { e.clk = c }
}

// WithRegistry attaches the registry for the engine's self-metrics.
func WithRegistry(r *metrics.Registry) Option {
	return func(e *Engine) { e.registry = r }
}

// WithConfigurator sets how routing configs reach the proxies.
func WithConfigurator(c Configurator) Option {
	return func(e *Engine) { e.configurator = c }
}

// New creates an engine. By default it uses the real clock, a private
// metrics registry, and a no-op configurator.
func New(opts ...Option) *Engine {
	e := &Engine{
		clk:          clock.Real{},
		registry:     metrics.NewRegistry(),
		configurator: NopConfigurator{},
		bus:          newEventBus(1024),
		runs:         make(map[string]*Run, 8),
	}
	for _, o := range opts {
		o(e)
	}
	e.mActive = e.registry.Gauge("engine_active_strategies", nil)
	e.mEnacted = e.registry.Counter("engine_strategies_enacted_total", nil)
	e.mTransitions = e.registry.Counter("engine_transitions_total", nil)
	e.mChecks = e.registry.Counter("engine_check_executions_total", nil)
	return e
}

// Registry exposes the engine's self-metrics for scraping.
func (e *Engine) Registry() *metrics.Registry { return e.registry }

// Subscribe returns a channel of engine events and a cancel function. The
// channel is closed after cancel. Slow subscribers drop events rather than
// blocking enactment.
func (e *Engine) Subscribe(buffer int) (<-chan Event, func()) {
	return e.bus.subscribe(buffer)
}

// RecentEvents returns up to n of the most recent events, oldest first.
func (e *Engine) RecentEvents(n int) []Event { return e.bus.recent(n) }

// Enact validates the strategy and starts executing it. The returned Run
// tracks progress; the engine keeps running it in the background.
func (e *Engine) Enact(s *core.Strategy) (*Run, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if r, exists := e.runs[s.Name]; exists && !r.Done() {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAlreadyRunning, s.Name)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Run{
		engine:   e,
		strategy: s,
		cancel:   cancel,
		done:     make(chan struct{}),
		controls: make(chan controlMsg),
		status: Status{
			Strategy: s.Name,
			State:    RunPending,
		},
	}
	e.runs[s.Name] = r
	e.mu.Unlock()

	e.mEnacted.Inc()
	e.mActive.Add(1)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.mActive.Add(-1)
		r.loop(ctx)
	}()
	return r, nil
}

// Run returns the run for a strategy name.
func (e *Engine) Run(name string) (*Run, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.runs[name]
	return r, ok
}

// Runs snapshots all known runs.
func (e *Engine) Runs() []*Run {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Run, 0, len(e.runs))
	for _, r := range e.runs {
		out = append(out, r)
	}
	return out
}

// Abort stops a running strategy.
func (e *Engine) Abort(name string) error {
	e.mu.Lock()
	r, ok := e.runs[name]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	r.Abort()
	return nil
}

// Pause suspends a running strategy at its current state, returning the new
// pause generation (see Run.Pause).
func (e *Engine) Pause(name string) (int, error) {
	r, ok := e.Run(name)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return r.Pause()
}

// Resume continues a paused strategy (see Run.Resume).
func (e *Engine) Resume(name string, gen int) error {
	r, ok := e.Run(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return r.Resume(gen)
}

// Promote applies a manual success gate decision (see Run.Promote).
func (e *Engine) Promote(name, target string) error {
	r, ok := e.Run(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return r.Promote(target)
}

// Rollback applies a manual failure gate decision (see Run.Rollback).
func (e *Engine) Rollback(name, target string) error {
	r, ok := e.Run(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return r.Rollback(target)
}

// RunEvents returns up to n buffered events for one strategy, oldest first.
func (e *Engine) RunEvents(name string, n int) []Event {
	return e.bus.recentFiltered(name, n)
}

// Remove forgets a finished run (keeps the registry tidy between tests and
// long engine uptimes). Running strategies cannot be removed.
func (e *Engine) Remove(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.runs[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if !r.Done() {
		return fmt.Errorf("engine: strategy %s still running", name)
	}
	delete(e.runs, name)
	return nil
}

// Shutdown aborts everything and waits for run loops to stop.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	for _, r := range e.runs {
		r.Abort()
	}
	e.mu.Unlock()
	e.wg.Wait()
	e.bus.close()
}

// nextGeneration issues monotonically increasing proxy config generations.
func (e *Engine) nextGeneration() int64 { return e.generation.Add(1) }
