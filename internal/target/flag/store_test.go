package flag

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	publicflag "bifrost/flag"
	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/httpx"
)

func storeStrategy() (*core.Strategy, core.RoutingConfig) {
	s := &core.Strategy{
		Name: "flag-unit",
		Services: []core.Service{{
			Name:   "search",
			Target: "flag",
			Versions: []core.Version{
				{Name: "canary", Endpoint: "127.0.0.1:9102"},
				{Name: "stable", Endpoint: "https://stable.internal"},
			},
		}},
	}
	rc := core.RoutingConfig{
		Service: "search",
		Sticky:  true,
		Weights: map[string]float64{"stable": 90, "canary": 10},
	}
	return s, rc
}

func TestRenderRulesetDeterministic(t *testing.T) {
	s, rc := storeStrategy()
	set, err := RenderRuleset(s, rc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if set.Service != "search" || set.Strategy != "flag-unit" || set.Generation != 7 || !set.Sticky {
		t.Errorf("ruleset header = %+v", set)
	}
	// Variants in sorted version order, weights normalized, endpoints
	// scheme-defaulted like the proxy configurator.
	want := []publicflag.Variant{
		{Name: "canary", Endpoint: "http://127.0.0.1:9102", Weight: 0.1},
		{Name: "stable", Endpoint: "https://stable.internal", Weight: 0.9},
	}
	if !reflect.DeepEqual(set.Variants, want) {
		t.Errorf("variants = %+v, want %+v", set.Variants, want)
	}
	again, _ := RenderRuleset(s, rc, 7)
	if !reflect.DeepEqual(set, again) {
		t.Error("repeated renders differ")
	}
}

func TestRenderRulesetErrors(t *testing.T) {
	s, rc := storeStrategy()
	rc.Service = "ghost"
	if _, err := RenderRuleset(s, rc, 1); err == nil {
		t.Error("unknown service rendered")
	}
	rc.Service = "search"
	rc.Weights = map[string]float64{"nope": 1}
	if _, err := RenderRuleset(s, rc, 1); err == nil {
		t.Error("unknown version rendered")
	}
}

func TestStoreConvergenceLifecycle(t *testing.T) {
	clk := clock.NewManual(time.Unix(1000, 0))
	st := NewStore(WithInstanceTTL(30 * time.Second))
	st.BindClock(clk)
	s, rc := storeStrategy()
	ctx := context.Background()

	if err := st.Apply(ctx, s, nil, rc, 1); err != nil {
		t.Fatal(err)
	}
	// Settling entries report nothing: no degraded event may precede the
	// generation's routing_applied.
	poll(t, st, "search", "sdk-a")
	if got := st.Convergence(ctx, "flag-unit"); len(got) != 0 {
		t.Errorf("convergence while settling = %+v", got)
	}
	st.Settled("flag-unit", "search")

	poll(t, st, "search", "sdk-b")
	got := st.Convergence(ctx, "flag-unit")
	if len(got) != 1 {
		t.Fatalf("convergence = %+v, want one service", got)
	}
	c := got[0]
	if c.Service != "search" || c.Generation != 1 || c.Replicas != 2 || c.Acked != 2 || !c.Converged {
		t.Errorf("report = %+v", c)
	}

	// A new generation supersedes: instances lag until they re-poll.
	if err := st.Apply(ctx, s, nil, rc, 2); err != nil {
		t.Fatal(err)
	}
	st.Settled("flag-unit", "search")
	got = st.Convergence(ctx, "flag-unit")
	if len(got) != 1 || got[0].Acked != 0 || got[0].Converged {
		t.Fatalf("post-supersede report = %+v", got)
	}
	if !reflect.DeepEqual(got[0].Lagging, []string{"sdk-a", "sdk-b"}) {
		t.Errorf("lagging = %v", got[0].Lagging)
	}
	poll(t, st, "search", "sdk-a")
	got = st.Convergence(ctx, "flag-unit")
	if got[0].Acked != 1 || !reflect.DeepEqual(got[0].Lagging, []string{"sdk-b"}) {
		t.Errorf("partial re-poll report = %+v", got[0])
	}

	// Silent instances age out of the replica count entirely.
	clk.Advance(31 * time.Second)
	poll(t, st, "search", "sdk-a")
	got = st.Convergence(ctx, "flag-unit")
	if len(got) != 1 || got[0].Replicas != 1 || got[0].Acked != 1 || !got[0].Converged {
		t.Errorf("post-TTL report = %+v", got)
	}

	// All instances silent → no fleet to speak about, no report.
	clk.Advance(31 * time.Second)
	if got := st.Convergence(ctx, "flag-unit"); len(got) != 0 {
		t.Errorf("report with zero live instances = %+v", got)
	}

	st.Retire("flag-unit")
	poll404(t, st, "search")
}

// TestStoreInstanceTTLQuorum pins the liveness contract for SDK instances:
// an instance that stops polling keeps degrading convergence only until the
// TTL passes, then drops out of the quorum entirely (replicas and lagging
// both) so the live fleet can converge without it; if it later rejoins, the
// poll itself re-acks the current generation — a returning instance can
// never re-enter the quorum holding a stale ruleset.
func TestStoreInstanceTTLQuorum(t *testing.T) {
	clk := clock.NewManual(time.Unix(5000, 0))
	ttl := 30 * time.Second
	st := NewStore(WithInstanceTTL(ttl))
	st.BindClock(clk)
	s, rc := storeStrategy()
	ctx := context.Background()

	if err := st.Apply(ctx, s, nil, rc, 1); err != nil {
		t.Fatal(err)
	}
	st.Settled("flag-unit", "search")
	poll(t, st, "search", "sdk-live")
	poll(t, st, "search", "sdk-dying")

	// Generation 2 rolls out; only sdk-live re-polls. sdk-dying now lags
	// and blocks convergence — the degraded window the TTL must bound.
	if err := st.Apply(ctx, s, nil, rc, 2); err != nil {
		t.Fatal(err)
	}
	st.Settled("flag-unit", "search")
	poll(t, st, "search", "sdk-live")
	got := st.Convergence(ctx, "flag-unit")
	if len(got) != 1 {
		t.Fatalf("convergence = %+v, want one service", got)
	}
	c := got[0]
	if c.Replicas != 2 || c.Acked != 1 || c.Converged ||
		!reflect.DeepEqual(c.Lagging, []string{"sdk-dying"}) {
		t.Fatalf("mid-lag report = %+v, want 1/2 acked lagging [sdk-dying]", c)
	}

	// Just inside the TTL the silent instance still counts; keep sdk-live
	// fresh so only sdk-dying's clock is running out.
	clk.Advance(ttl - time.Second)
	poll(t, st, "search", "sdk-live")
	if c := st.Convergence(ctx, "flag-unit")[0]; c.Replicas != 2 || c.Converged {
		t.Fatalf("report inside TTL = %+v, want still degraded by sdk-dying", c)
	}

	// Past the TTL it stops counting as a replica at all: the quorum is
	// the live fleet, which is fully acked — converged.
	clk.Advance(2 * time.Second)
	c = st.Convergence(ctx, "flag-unit")[0]
	if c.Replicas != 1 || c.Acked != 1 || !c.Converged || len(c.Lagging) != 0 {
		t.Fatalf("post-TTL report = %+v, want 1/1 converged with no lagging", c)
	}

	// The instance comes back from the dead. The poll both revives it and
	// hands it the current ruleset, so it rejoins already acked — quorum
	// grows without a degraded blip.
	poll(t, st, "search", "sdk-dying")
	c = st.Convergence(ctx, "flag-unit")[0]
	if c.Generation != 2 || c.Replicas != 2 || c.Acked != 2 || !c.Converged {
		t.Fatalf("rejoin report = %+v, want 2/2 converged at generation 2", c)
	}
}

func TestStoreWithCurrent(t *testing.T) {
	st := NewStore()
	s, rc := storeStrategy()
	ctx := context.Background()
	if err := st.Apply(ctx, s, nil, rc, 1); err != nil {
		t.Fatal(err)
	}
	if st.WithCurrent("flag-unit", "search", 1, func() {}) {
		t.Error("gate open while settling")
	}
	st.Settled("flag-unit", "search")
	ran := false
	if !st.WithCurrent("flag-unit", "search", 1, func() { ran = true }) || !ran {
		t.Error("gate refused the settled current generation")
	}
	if err := st.Apply(ctx, s, nil, rc, 2); err != nil {
		t.Fatal(err)
	}
	st.Settled("flag-unit", "search")
	ran = false
	if st.WithCurrent("flag-unit", "search", 1, func() { ran = true }) || ran {
		t.Error("stale generation slipped through the gate")
	}
	if st.WithCurrent("other-strategy", "search", 2, func() {}) {
		t.Error("gate open for a foreign strategy")
	}
	if st.WithCurrent("flag-unit", "ghost", 2, func() {}) {
		t.Error("gate open for an unknown service")
	}
}

func TestStoreHandler(t *testing.T) {
	st := NewStore()
	s, rc := storeStrategy()
	if err := st.Apply(context.Background(), s, nil, rc, 3); err != nil {
		t.Fatal(err)
	}
	st.Settled("flag-unit", "search")
	ts := httptest.NewServer(st.Handler())
	defer ts.Close()

	// Unknown service → problem JSON with the no_ruleset code.
	resp, err := http.Get(ts.URL + "/ghost")
	if err != nil {
		t.Fatal(err)
	}
	var p httpx.Problem
	if err := httpx.ReadJSONBody(resp.Body, &p); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || p.Code != CodeNoRuleset {
		t.Errorf("ghost poll = %d %+v", resp.StatusCode, p)
	}

	// SDK Refresh round-trips and the poll records the instance as an ack.
	sdk := &publicflag.Client{BaseURL: ts.URL, Service: "search", InstanceID: "sdk-1"}
	if err := sdk.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sdk.Generation() != 3 {
		t.Errorf("SDK generation = %d, want 3", sdk.Generation())
	}
	got := st.Convergence(context.Background(), "flag-unit")
	if len(got) != 1 || got[0].Replicas != 1 || got[0].Acked != 1 {
		t.Errorf("convergence after SDK poll = %+v", got)
	}

	// Method discipline.
	resp, err = http.Post(ts.URL+"/search", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d", resp.StatusCode)
	}
}

// poll simulates one SDK instance fetching the service's ruleset.
func poll(t *testing.T, st *Store, service, instance string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/"+service, nil)
	req.Header.Set(publicflag.InstanceHeader, instance)
	w := httptest.NewRecorder()
	st.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("poll %s as %s = %d", service, instance, w.Code)
	}
}

func poll404(t *testing.T, st *Store, service string) {
	t.Helper()
	w := httptest.NewRecorder()
	st.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/"+service, nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("poll retired %s = %d, want 404", service, w.Code)
	}
}
