// Package bifrost is the public facade of the Bifrost middleware: a system
// for defining and automatically enacting multi-phase live testing
// strategies (canary releases, dark launches, A/B tests, gradual rollouts),
// reproducing Schermann, Schöni, Leitner & Gall, "Bifrost — Supporting
// Continuous Deployment with Automated Enactment of Multi-Phase Live
// Testing Strategies", Middleware 2016.
//
// The typical flow:
//
//	strategy, err := bifrost.CompileStrategy(yamlSource)
//	eng := bifrost.NewEngine(bifrost.WithHTTPProxies())
//	run, err := eng.Enact(strategy)
//	run.Wait(ctx)
//
// Strategies are written in a YAML DSL (see package bifrost/internal/dsl
// for the full grammar), validated against the formal model of the paper's
// §3, and executed by an engine that reconfigures per-service Bifrost
// proxies on every state change. See README.md for a guided tour and
// examples/ for runnable programs.
package bifrost

import (
	"context"
	"time"

	"bifrost/internal/analysis"
	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
	"bifrost/internal/metrics"
	"bifrost/internal/proxy"
	"bifrost/internal/target"
)

// Re-exported core model types. A Strategy is S = ⟨B, A⟩ of the paper's
// formal model; see the internal/core documentation for the semantics.
type (
	// Strategy is a compiled, validated multi-phase live testing strategy.
	Strategy = core.Strategy
	// Service is one architectural component under live testing.
	Service = core.Service
	// Version is one deployed version of a service.
	Version = core.Version
	// State is one phase of the release automaton.
	State = core.State
	// Check is a timed basic or exception check.
	Check = core.Check
	// RoutingConfig is a state's dynamic routing configuration.
	RoutingConfig = core.RoutingConfig
	// ShadowRule duplicates traffic for dark launches.
	ShadowRule = core.ShadowRule

	// Engine enacts strategies.
	Engine = engine.Engine
	// Run tracks one strategy enactment.
	Run = engine.Run
	// Status is a run's progress snapshot.
	Status = engine.Status
	// Event is one observable engine occurrence.
	Event = engine.Event
	// Client talks to a remote engine's /api/v2 REST interface, including
	// the operator controls (pause/resume, promote/rollback) and the live
	// SSE event stream via Watch.
	Client = engine.Client

	// Proxy is the per-service routing proxy.
	Proxy = proxy.Proxy
	// ProxyConfig is a proxy's routing configuration.
	ProxyConfig = proxy.Config
	// Backend is one routable version inside a ProxyConfig.
	Backend = proxy.Backend
)

// Enactment-target plugin types: strategies pick where routing is enacted
// per service (`target:` in the deployment section), and a TargetRegistry
// maps those kinds to implementations — the proxy fleet, client-side flag
// rulesets, declarative shell-outs, or custom plugins.
type (
	// Target enacts routing configs for services that select its kind.
	Target = target.Target
	// TargetRegistry maps target kinds to registered implementations.
	TargetRegistry = target.Registry
	// TargetConvergence is one service's convergence report from a target.
	TargetConvergence = target.Convergence
)

// NewTargetRegistry creates an empty enactment-target registry. Register
// implementations by kind, then pass it to NewEngine via WithTargets.
func NewTargetRegistry() *TargetRegistry { return target.NewRegistry() }

// NewProxyFleetTarget wraps the default HTTP proxy-fleet delivery as a
// registrable target (conventionally under kind "proxy").
func NewProxyFleetTarget() Target {
	return engine.NewProxyTarget(engine.NewFleetConfigurator())
}

// CompileStrategy compiles YAML DSL source into a validated strategy,
// resolving metric providers from the document's providers section.
// Template sources that expand to several runs are an error here; use
// CompileAllStrategies for those.
func CompileStrategy(src string) (*Strategy, error) {
	return dsl.Compile(src)
}

// ExpandedStrategy is one concrete run stamped out of a strategy source:
// plain sources yield one, matrix templates one per variable combination.
type ExpandedStrategy = dsl.Expanded

// CompileAllStrategies compiles YAML DSL source that may be a matrix
// template (vars/var-transforms/matrix sections), returning every concrete
// run it expands to, each with standalone re-journalable source.
func CompileAllStrategies(src string) ([]ExpandedStrategy, error) {
	return dsl.CompileAll(src)
}

// Compiler gives control over provider resolution (inject custom metric
// queriers, set a default provider).
type Compiler = dsl.Compiler

// NewEngine creates a strategy-enactment engine.
//
// By default routing updates are delivered over HTTP to the proxies named
// in the strategy's deployment section — all replicas of a `proxies:`
// fleet, with bounded retries and background anti-entropy reconciliation.
// Pass WithLocalProxies to wire in-process proxies instead (tests,
// examples, single-binary setups).
func NewEngine(opts ...EngineOption) *Engine {
	cfg := engineConfig{
		configurator: engine.NewFleetConfigurator(),
		clk:          clock.Real{},
	}
	for _, o := range opts {
		o(&cfg)
	}
	engOpts := []engine.Option{
		engine.WithConfigurator(cfg.configurator),
		engine.WithClock(cfg.clk),
	}
	if cfg.registry != nil {
		engOpts = append(engOpts, engine.WithRegistry(cfg.registry))
	}
	return engine.New(engOpts...)
}

type engineConfig struct {
	configurator engine.Configurator
	clk          clock.Clock
	registry     *metrics.Registry
}

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

// WithHTTPProxies delivers routing updates over the proxies' admin APIs
// (the default): pushes fan out to every replica of a service's proxy
// fleet with retries, and a per-run reconciler re-pushes the current
// generation to replicas that lag or restart mid-phase.
func WithHTTPProxies() EngineOption {
	return func(c *engineConfig) { c.configurator = engine.NewFleetConfigurator() }
}

// WithLocalProxies delivers routing updates directly to in-process proxies
// registered on the returned registrar.
func WithLocalProxies(reg *LocalProxies) EngineOption {
	return func(c *engineConfig) { c.configurator = reg.lc }
}

// WithTargets dispatches each service's routing to the enactment target
// its deployment selects (`target:` kind), resolved from the registry.
// Services without an explicit kind use "proxy".
func WithTargets(reg *TargetRegistry) EngineOption {
	return func(c *engineConfig) { c.configurator = engine.NewTargetConfigurator(reg) }
}

// LocalProxies registers in-process proxies by service name.
type LocalProxies struct {
	lc *engine.LocalConfigurator
}

// NewLocalProxies creates an empty registrar.
func NewLocalProxies() *LocalProxies {
	return &LocalProxies{lc: engine.NewLocalConfigurator()}
}

// Register attaches the proxy fronting a service.
func (l *LocalProxies) Register(service string, p *Proxy) {
	l.lc.Register(service, p)
}

// NewProxy creates a Bifrost proxy for one service. The zero ProxyConfig
// starts unconfigured; the engine pushes routing when a strategy runs.
func NewProxy(service string, cfg ProxyConfig, opts ...proxy.Option) (*Proxy, error) {
	return proxy.New(service, cfg, opts...)
}

// Validate checks a hand-built strategy against the formal model's
// structural rules.
func Validate(s *Strategy) error { return s.Validate() }

// Analyze runs the strategy verification and reasoning tools: reachability
// lints, rollout-time bounds, cycle detection.
func Analyze(s *Strategy) (*analysis.Report, error) { return analysis.Analyze(s) }

// ExpectedDuration estimates the expected rollout time under uniform
// transition probabilities.
func ExpectedDuration(s *Strategy) (time.Duration, error) {
	return analysis.ExpectedDuration(s, analysis.UniformProbabilities(s))
}

// DOT renders the release automaton in Graphviz format.
func DOT(s *Strategy) string { return analysis.DOT(s) }

// WaitForCompletion blocks until the run finishes or the context expires,
// returning the final status.
func WaitForCompletion(ctx context.Context, r *Run) (Status, error) {
	if err := r.Wait(ctx); err != nil {
		return r.Status(), err
	}
	return r.Status(), nil
}
