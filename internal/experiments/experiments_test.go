package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"bifrost/internal/engine"
	"bifrost/internal/loadgen"
)

func TestTestbedDeploysAndServes(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{WithProxies: true, Products: 10, Users: 3})
	if err != nil {
		t.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()

	ctx := context.Background()
	// The gateway serves the frontend.
	res, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:    tb.Gateway.URL(),
		RPS:        50,
		Duration:   400 * time.Millisecond,
		Users:      3,
		ProductIDs: tb.ProductIDs,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	st := loadgen.StatsOf(res.Samples)
	if st.Count == 0 {
		t.Fatal("no samples")
	}
	if st.Errors > st.Count/10 {
		t.Errorf("errors = %d of %d", st.Errors, st.Count)
	}

	// The scraper collected service metrics into the metrics store.
	tb.Scraper.ScrapeOnce(ctx)
	v, err := tb.MetricsStore.QueryNow(`sum(shop_requests_total)`)
	if err != nil {
		t.Fatalf("metrics query: %v", err)
	}
	if v <= 0 {
		t.Errorf("shop_requests_total = %v", v)
	}
}

func TestReleaseStrategyCompilesAgainstTestbed(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{WithProxies: true, Products: 4, Users: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	s, err := CompileReleaseStrategy("compile-check", tb, QuickPhases())
	if err != nil {
		t.Fatalf("CompileReleaseStrategy: %v", err)
	}
	// canary, dark, ab + 2 gradual chains (10 steps each at 10%) +
	// done-a, done-b, rollback = 3 + 20 + 3.
	if len(s.Automaton.States) != 26 {
		t.Errorf("states = %d, want 26", len(s.Automaton.States))
	}
	if s.Automaton.Start != "canary" {
		t.Errorf("start = %q", s.Automaton.Start)
	}
}

func TestEndUserActiveRunsFullStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	plan := PhasePlan{
		Canary: 1500 * time.Millisecond, Dark: 1500 * time.Millisecond,
		AB:          1500 * time.Millisecond,
		RolloutStep: 200 * time.Millisecond, RolloutStepPct: 25,
		CheckInterval: 300 * time.Millisecond, CheckCount: 4,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := RunEndUser(ctx, Active, EndUserConfig{
		Plan: plan, RPS: 25, RampUp: time.Second, Users: 8, Seed: 13,
	})
	if err != nil {
		t.Fatalf("RunEndUser: %v", err)
	}
	if res.Strategy == nil {
		t.Fatal("no strategy status recorded")
	}
	if res.Strategy.State != engine.RunCompleted {
		t.Fatalf("strategy state = %s (%s); path %+v",
			res.Strategy.State, res.Strategy.Error, res.Strategy.Path)
	}
	// The winner rollout must have happened: last transition ends in a
	// done state (product A is biased to win, but either is legal).
	last := res.Strategy.Path[len(res.Strategy.Path)-1]
	if !strings.HasPrefix(last.To, "done-") {
		t.Errorf("final state = %q, want done-*; path %+v", last.To, res.Strategy.Path)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	for _, p := range res.Phases {
		if p.Stats.Count == 0 {
			t.Errorf("phase %s has no samples", p.Phase)
		}
	}
	if len(res.Series) == 0 {
		t.Error("no moving-average series")
	}
}

func TestParallelStrategiesSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	plan := PhasePlan{
		Canary: 800 * time.Millisecond, Dark: 800 * time.Millisecond,
		AB:          800 * time.Millisecond,
		RolloutStep: 200 * time.Millisecond, RolloutStepPct: 50,
		CheckInterval: 200 * time.Millisecond, CheckCount: 3,
	}
	points, err := RunParallelStrategies(ctx, ParallelStrategiesConfig{
		Counts: []int{1, 5}, Plan: plan,
	})
	if err != nil {
		t.Fatalf("RunParallelStrategies: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Failed > 0 {
			t.Errorf("n=%d: %d failed runs", p.N, p.Failed)
		}
		if p.Completed != p.N {
			t.Errorf("n=%d: completed = %d", p.N, p.Completed)
		}
		if p.DelayMeanSeconds < 0 {
			t.Errorf("n=%d: negative delay %v", p.N, p.DelayMeanSeconds)
		}
	}
	var sb strings.Builder
	PrintSweep(&sb, "Figure 7/8", "strategies", points)
	if !strings.Contains(sb.String(), "delay_mean_s") {
		t.Errorf("PrintSweep output:\n%s", sb.String())
	}
}

func TestParallelChecksSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	points, err := RunParallelChecks(ctx, ParallelChecksConfig{
		GroupCounts:   []int{1, 3},
		PhaseDuration: 1200 * time.Millisecond,
		CheckInterval: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunParallelChecks: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].N != 8 || points[1].N != 24 {
		t.Errorf("check counts = %d, %d; want 8, 24", points[0].N, points[1].N)
	}
	for _, p := range points {
		if p.Failed > 0 {
			t.Errorf("n=%d failed", p.N)
		}
	}
}

func TestSummarizeCPU(t *testing.T) {
	st := summarizeCPU([]float64{10, 20, 30, 40, 50})
	if st.N != 5 || st.Min != 10 || st.Max != 50 || st.Median != 30 || st.Mean != 30 {
		t.Errorf("stats = %+v", st)
	}
	if st.Q1 != 20 || st.Q3 != 40 {
		t.Errorf("quartiles = %v/%v", st.Q1, st.Q3)
	}
	if summarizeCPU(nil).N != 0 {
		t.Error("empty stats wrong")
	}
}

func TestPhaseWindowsCoverPlan(t *testing.T) {
	cfg := EndUserConfig{RampUp: 2 * time.Second}.withDefaults()
	plan := QuickPhases()
	ws := phaseWindows(cfg, plan)
	if len(ws) != 4 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[0].from != cfg.RampUp {
		t.Errorf("first window starts at %v", ws[0].from)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].from != ws[i-1].to {
			t.Errorf("gap between %s and %s", ws[i-1].name, ws[i].name)
		}
	}
	if got := ws[3].to - cfg.RampUp; got != plan.Total() {
		t.Errorf("total = %v, plan total = %v", got, plan.Total())
	}
}
