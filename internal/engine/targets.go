package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/target"
)

// ProxyTarget adapts the proxy-fleet configurator to the enactment-target
// plugin interface: the registry's "proxy" kind is the existing fleet
// delivery — quorum fan-out, per-replica retry, anti-entropy — with zero
// behavior change.
type ProxyTarget struct {
	fc *FleetConfigurator
}

var (
	_ target.Target  = (*ProxyTarget)(nil)
	_ target.Settler = (*ProxyTarget)(nil)
	_ target.Gate    = (*ProxyTarget)(nil)
	_ target.Paced   = (*ProxyTarget)(nil)
)

// NewProxyTarget wraps a fleet configurator as the "proxy" target plugin.
func NewProxyTarget(fc *FleetConfigurator) *ProxyTarget {
	return &ProxyTarget{fc: fc}
}

// Apply implements target.Target.
func (pt *ProxyTarget) Apply(ctx context.Context, s *core.Strategy, state *core.State,
	rc core.RoutingConfig, generation int64) error {
	return pt.fc.Configure(ctx, s, state, rc, generation)
}

// Convergence implements target.Target: one anti-entropy pass over the
// strategy's proxy fleets.
func (pt *ProxyTarget) Convergence(ctx context.Context, strategy string) []target.Convergence {
	reports := pt.fc.reconcile(ctx, strategy)
	out := make([]target.Convergence, len(reports))
	for i, rep := range reports {
		out[i] = target.Convergence(rep)
	}
	return out
}

// Retire implements target.Target.
func (pt *ProxyTarget) Retire(strategy string) { pt.fc.forget(strategy) }

// Settled implements target.Settler.
func (pt *ProxyTarget) Settled(strategy, service string) { pt.fc.settled(strategy, service) }

// WithCurrent implements target.Gate.
func (pt *ProxyTarget) WithCurrent(strategy, service string, generation int64, fn func()) bool {
	return pt.fc.withCurrent(strategy, service, generation, fn)
}

// ReconcileInterval implements target.Paced.
func (pt *ProxyTarget) ReconcileInterval() time.Duration { return pt.fc.reconcileInterval() }

// PassBudget implements target.Paced.
func (pt *ProxyTarget) PassBudget() time.Duration { return pt.fc.passBudget() }

// bindEngine forwards the engine's clock and metrics registry to the
// wrapped fleet configurator (see TargetConfigurator.bindEngine).
func (pt *ProxyTarget) bindEngine(e *Engine) { pt.fc.bindEngine(e) }

// TargetConfigurator is the registry-backed Configurator: each routing
// config is dispatched to the enactment target the service's deployment
// selects (`target:` kind; the default is the proxy fleet). It also
// implements fleetManager by aggregating convergence reports from every
// target enacting for a strategy, so Status.Fleet, routing_degraded /
// routing_converged events, and the per-run reconciler work identically
// whether a service is fronted by proxies or a flag SDK fleet.
type TargetConfigurator struct {
	reg *target.Registry

	mu sync.Mutex
	// owners records which target enacted for each (strategy, service),
	// so settled/withCurrent/forget route to the plugin that actually
	// holds the state.
	owners map[fleetKey]target.Target
}

var (
	_ Configurator = (*TargetConfigurator)(nil)
	_ fleetManager = (*TargetConfigurator)(nil)
)

// NewTargetConfigurator creates a configurator dispatching to reg.
func NewTargetConfigurator(reg *target.Registry) *TargetConfigurator {
	return &TargetConfigurator{reg: reg, owners: make(map[fleetKey]target.Target, 8)}
}

// Registry returns the target registry the configurator dispatches to.
func (tc *TargetConfigurator) Registry() *target.Registry { return tc.reg }

// Configure implements Configurator: it resolves the service's target
// kind, records the owning plugin, and applies the config through it.
func (tc *TargetConfigurator) Configure(ctx context.Context, s *core.Strategy,
	state *core.State, rc core.RoutingConfig, generation int64) error {

	svc, ok := s.FindService(rc.Service)
	if !ok {
		return fmt.Errorf("engine: routing for unknown service %q", rc.Service)
	}
	kind := target.KindFor(svc)
	t, ok := tc.reg.Lookup(kind)
	if !ok {
		return fmt.Errorf("engine: no enactment target registered for kind %q (service %q; registered: %s)",
			kind, rc.Service, strings.Join(tc.reg.Kinds(), ", "))
	}
	tc.mu.Lock()
	tc.owners[fleetKey{strategy: s.Name, service: rc.Service}] = t
	tc.mu.Unlock()
	return t.Apply(ctx, s, state, rc, generation)
}

// strategyOwners returns the distinct targets that have enacted for the
// strategy.
func (tc *TargetConfigurator) strategyOwners(strategy string) []target.Target {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	seen := make(map[target.Target]bool, 2)
	out := make([]target.Target, 0, 2)
	for key, t := range tc.owners {
		if key.strategy == strategy && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func (tc *TargetConfigurator) ownerOf(strategy, service string) target.Target {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.owners[fleetKey{strategy: strategy, service: service}]
}

// reconcile implements fleetManager: one convergence pass across every
// target enacting for the strategy, merged and sorted by service.
func (tc *TargetConfigurator) reconcile(ctx context.Context, strategy string) []FleetStatus {
	var out []FleetStatus
	for _, t := range tc.strategyOwners(strategy) {
		for _, c := range t.Convergence(ctx, strategy) {
			out = append(out, FleetStatus(c))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// reconcileInterval implements fleetManager: the fastest cadence any
// registered paced target asks for (default 10s).
func (tc *TargetConfigurator) reconcileInterval() time.Duration {
	d := 10 * time.Second
	for _, t := range tc.reg.All() {
		if p, ok := t.(target.Paced); ok {
			if v := p.ReconcileInterval(); v > 0 && v < d {
				d = v
			}
		}
	}
	return d
}

// passBudget implements fleetManager: the largest budget any registered
// paced target needs, so the slowest plugin's pass is never cut short.
func (tc *TargetConfigurator) passBudget() time.Duration {
	var d time.Duration
	for _, t := range tc.reg.All() {
		if p, ok := t.(target.Paced); ok {
			if v := p.PassBudget(); v > d {
				d = v
			}
		}
	}
	if d == 0 {
		d = 10 * time.Second
	}
	return d
}

// settled implements fleetManager, routing to the owning target.
func (tc *TargetConfigurator) settled(strategy, service string) {
	if s, ok := tc.ownerOf(strategy, service).(target.Settler); ok {
		s.Settled(strategy, service)
	}
}

// withCurrent implements fleetManager. Targets without a publish gate
// cannot re-check generation currency, so their reports publish as-is.
func (tc *TargetConfigurator) withCurrent(strategy, service string, generation int64, fn func()) bool {
	t := tc.ownerOf(strategy, service)
	if t == nil {
		return false
	}
	if g, ok := t.(target.Gate); ok {
		return g.WithCurrent(strategy, service, generation, fn)
	}
	fn()
	return true
}

// forget implements fleetManager: retire the strategy on every target
// that enacted for it and drop the ownership records.
func (tc *TargetConfigurator) forget(strategy string) {
	for _, t := range tc.strategyOwners(strategy) {
		t.Retire(strategy)
	}
	tc.mu.Lock()
	for key := range tc.owners {
		if key.strategy == strategy {
			delete(tc.owners, key)
		}
	}
	tc.mu.Unlock()
}

// tracks reports whether any of the strategy's services enacts onto a
// target that actually reconciles convergence — a Settler plugin, with
// the proxy kind additionally requiring declared proxy endpoints. The run
// loop uses this (via configuratorTracksFleet) to decide whether to start
// the per-run reconciler.
func (tc *TargetConfigurator) tracks(s *core.Strategy) bool {
	for _, svc := range s.Services {
		kind := target.KindFor(svc)
		t, ok := tc.reg.Lookup(kind)
		if !ok {
			continue
		}
		if _, settles := t.(target.Settler); !settles {
			continue
		}
		if kind == target.KindProxy && len(svc.ProxyEndpoints()) == 0 {
			continue
		}
		return true
	}
	return false
}

// bindEngine forwards the engine to every registered target that wants
// it: proxy plugins take the clock and metrics registry, clock-keeping
// plugins (liveness TTLs) take the clock — so manual-clock tests drive
// plugin time too.
func (tc *TargetConfigurator) bindEngine(e *Engine) {
	for _, t := range tc.reg.All() {
		if b, ok := t.(interface{ bindEngine(*Engine) }); ok {
			b.bindEngine(e)
		}
		if cb, ok := t.(target.ClockBinder); ok {
			cb.BindClock(e.clk)
		}
	}
}
