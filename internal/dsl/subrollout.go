package dsl

// Hierarchical rollouts: a phase whose `rollouts:` block nests a whole
// child strategy, stamped once per region.
//
//	strategy:
//	  phases:
//	    - phase: regions
//	      rollouts:
//	        regions: [eu, us, ap]      # one child run per region
//	        quorum: 2                  # promote when 2 regions pass (0 = all)
//	        onChildFail: fallback      # fallback | abort | continue
//	        strategy:                  # a full child phase list; `${region}`
//	          phases:                  # is bound per region
//	            - phase: canary
//	              ...
//	      on:
//	        success: done              # quorum reached
//	        failure: holdback          # quorum missed
//
// Each region's child compiles into a standalone document — the parent's
// deployment and providers sections plus the nested strategy block, with
// every `${region}` reference substituted (PR 7's template machinery) —
// so the engine can schedule it through the normal run path, journal it
// into its own partition, and recover it independently. A child passes
// when it completes in its success final: the final reached by following
// success transitions from the child's start, overridable with
// `successFinal:`.

import (
	"bifrost/internal/core"
	"bifrost/internal/yaml"
)

// compileSubRollout compiles a phase's rollouts: block into a
// core.SubRollout, stamping one child strategy per region.
func (pc *phaseCompiler) compileSubRollout(rollouts map[string]any, ctx string) *core.SubRollout {
	d := pc.d
	d.unknownKeys(rollouts, ctx, "regions", "quorum", "onChildFail", "successFinal", "strategy")

	regions := d.getStringSlice(rollouts, "regions", ctx)
	if len(regions) == 0 {
		d.errf("%s: regions list is required and must not be empty", ctx)
		return nil
	}
	sub := &core.SubRollout{
		Quorum:      d.getInt(rollouts, "quorum", ctx, 0),
		OnChildFail: d.getString(rollouts, "onChildFail", ctx),
	}
	explicitFinal := d.getString(rollouts, "successFinal", ctx)
	childStrategy := d.getMap(rollouts, "strategy", ctx)
	if childStrategy == nil {
		d.errf("%s: strategy block is required (the phases each region runs)", ctx)
		return nil
	}

	for _, region := range regions {
		childName := pc.strategyName + "-" + slug(region)
		childDoc := map[string]any{
			"name":     childName,
			"strategy": childStrategy,
		}
		if dep, ok := pc.doc["deployment"]; ok {
			childDoc["deployment"] = dep
		}
		if prov, ok := pc.doc["providers"]; ok {
			childDoc["providers"] = prov
		}
		used := make(map[string]bool, 1)
		resolved, ok := substitute(d, map[string]any(childDoc), ctx, map[string]any{"region": region}, used).(map[string]any)
		if !ok {
			return nil
		}
		// Re-encode and recompile from source, exactly like template
		// expansion: the child Source the engine journals must be the
		// text that compiled.
		src, err := yaml.Encode(resolved)
		if err != nil {
			d.errf("%s: region %q: re-encode child: %v", ctx, region, err)
			continue
		}
		doc2, err := yaml.ParseMap(src)
		if err != nil {
			d.errf("%s: region %q: %v", ctx, region, err)
			continue
		}
		child, err := pc.c.compileDoc(doc2)
		if err != nil {
			d.errf("%s: region %q: %v", ctx, region, err)
			continue
		}
		final := explicitFinal
		if final == "" {
			final = successFinal(child)
		}
		sub.Children = append(sub.Children, core.ChildRef{
			Name:         childName,
			Region:       region,
			Source:       src,
			SuccessFinal: final,
			Strategy:     child,
		})
	}
	return sub
}

// successFinal derives the final state that counts as a child passing: the
// state reached from the start by always taking the success transition
// (the highest threshold range). Empty when the walk cycles or dead-ends.
func successFinal(s *core.Strategy) string {
	id := s.Automaton.Start
	seen := make(map[string]bool, len(s.Automaton.States))
	for !s.Automaton.IsFinal(id) {
		if seen[id] {
			return ""
		}
		seen[id] = true
		st, ok := s.Automaton.State(id)
		if !ok || len(st.Transitions) == 0 {
			return ""
		}
		id = st.Transitions[len(st.Transitions)-1]
	}
	return id
}
