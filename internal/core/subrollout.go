package core

// MaxSubRolloutDepth bounds strategy nesting: a parent strategy may contain
// sub-rollout states whose children are flat strategies (depth 2); children
// that themselves contain sub-rollouts (depth 3) are rejected by Validate.
const MaxSubRolloutDepth = 2

// OnChildFail policies: what a parent does when one of a sub-rollout
// state's children ends without passing (aborted, errored, or completed in
// a final other than its SuccessFinal).
const (
	// ChildFailFallback (the default) contains the failure to its region:
	// the child's own failure transitions already routed it to its
	// rollback phase, siblings keep running, and the parent re-evaluates
	// the quorum — failing the state early only once the quorum has become
	// unreachable.
	ChildFailFallback = "fallback"
	// ChildFailAbort escalates: the first failed child aborts every
	// still-running sibling and fails the state immediately.
	ChildFailAbort = "abort"
	// ChildFailContinue tolerates failures: the parent waits for every
	// child to finish and then decides by quorum alone, with no early
	// failure exit.
	ChildFailContinue = "continue"
)

// ChildRef names one child of a sub-rollout state — typically one region
// of a geo-distributed rollout.
type ChildRef struct {
	// Name is the run name the child is scheduled under ("rollout-eu").
	// Unique within the sub-rollout and distinct from any ancestor
	// strategy name.
	Name string
	// Region labels the child in status output; defaults to Name.
	Region string
	// Source is the child's standalone strategy document (the DSL stamps
	// one per region). The engine schedules Source through the normal run
	// path so the child journals into its own partition and recovers
	// independently of the parent.
	Source string
	// SuccessFinal is the child final state whose reaching counts the
	// child as passed toward the quorum. Empty means any completion
	// passes.
	SuccessFinal string
	// Strategy is the compiled child strategy; validation recurses into
	// it (cycles, nesting depth, the child's own well-formedness).
	Strategy *Strategy
}

// RegionOrName returns the region label, defaulting to the child name.
func (c *ChildRef) RegionOrName() string {
	if c.Region != "" {
		return c.Region
	}
	return c.Name
}

// SubRollout nests child strategies under a state: entering the state
// schedules every child as its own run, and the state's outcome is decided
// by how many children pass — 1 (the success range) once Quorum children
// reach their SuccessFinal, 0 otherwise.
type SubRollout struct {
	// Children lists the nested runs, e.g. one per region.
	Children []ChildRef
	// Quorum is how many children must pass for the state to succeed.
	// Zero means all of them.
	Quorum int
	// OnChildFail selects the containment policy for failed children:
	// ChildFailFallback (default), ChildFailAbort, or ChildFailContinue.
	OnChildFail string
}

// QuorumOrAll returns the effective quorum: Quorum, or the child count
// when Quorum is zero.
func (sr *SubRollout) QuorumOrAll() int {
	if sr.Quorum <= 0 {
		return len(sr.Children)
	}
	return sr.Quorum
}

// FailPolicy returns the effective OnChildFail policy, defaulting to
// ChildFailFallback.
func (sr *SubRollout) FailPolicy() string {
	if sr.OnChildFail == "" {
		return ChildFailFallback
	}
	return sr.OnChildFail
}

// Child returns the named child ref.
func (sr *SubRollout) Child(name string) (*ChildRef, bool) {
	for i := range sr.Children {
		if sr.Children[i].Name == name {
			return &sr.Children[i], true
		}
	}
	return nil, false
}
