// Package core implements the formal model of multi-phase live testing from
// section 3 of the Bifrost paper.
//
// A release strategy S is the 2-tuple ⟨B, A⟩: a set of services B (each
// available in multiple versions with static endpoint configuration) and a
// deterministic finite automaton A = ⟨Ω, S, s1, δ, F⟩ whose states are
// phases of live testing. Each state s = ⟨C, T, W, Φ, η⟩ runs a set of
// timed checks C with weights W; the aggregated, weighted outcome e ∈ ℤ is
// mapped through the state's threshold ranges T by the transition function
// δ to pick the next state. Entering a state applies the dynamic routing
// configurations Φ (traffic splits and dark-launch duplication rules) to
// the affected services' proxies, and η assigns users to versions.
//
// Beyond the paper's basic and exception checks, the model carries
// statistical checks (compare, sequential, burnrate) whose evaluator is
// an Analyzer producing a typed Verdict — decision, test statistic, and
// per-window detail — instead of a bare boolean; see verdict.go.
//
// This package is pure model and semantics: no I/O, no timers, no HTTP.
// The engine package animates it; the dsl package compiles YAML strategies
// into it; the analysis package reasons about it.
package core

import (
	"fmt"
	"time"
)

// Strategy is a multi-phase live testing strategy: S = ⟨B, A⟩.
type Strategy struct {
	// Name identifies the strategy (unique within an engine).
	Name string
	// Services is B: the architectural components the strategy touches.
	Services []Service
	// Automaton is A: the execution state machine of the release process.
	Automaton Automaton
}

// Service is an atomic architectural component b ∈ B, e.g. a microservice,
// available in one or more versions.
type Service struct {
	// Name is the service identity, e.g. "search" or "product".
	Name string
	// Versions lists the deployed versions ⟨v1, …, vn⟩ of this service.
	Versions []Version
	// ProxyURL is the admin endpoint of the Bifrost proxy fronting this
	// service (the DSL's `proxy:` shorthand for a single-replica fleet).
	// Empty for model-only use.
	ProxyURL string
	// ProxyURLs lists the admin endpoints of every proxy replica fronting
	// this service (the DSL's `proxies:` list). At most one of ProxyURL and
	// ProxyURLs is set; use ProxyEndpoints to read either.
	ProxyURLs []string
	// Target names the enactment target kind routing configs for this
	// service are delivered to ("proxy", "flag", "command", …). Empty
	// means the bifrost proxy, preserving pre-registry behavior.
	Target string
	// Command is the argv a "command" target invokes to enact routing
	// changes (the rendered ruleset arrives on stdin). Unused by other
	// target kinds.
	Command []string
}

// ProxyEndpoints returns the admin endpoints of the proxy fleet fronting
// the service: the ProxyURLs list when set, otherwise the single ProxyURL
// (or nothing for model-only services).
func (s Service) ProxyEndpoints() []string {
	if len(s.ProxyURLs) > 0 {
		return s.ProxyURLs
	}
	if s.ProxyURL != "" {
		return []string{s.ProxyURL}
	}
	return nil
}

// Version is one deployed version v of a service, with its static
// configuration sc (endpoint information).
type Version struct {
	// Name identifies the version, e.g. "stable", "canary", "productA".
	Name string
	// Endpoint is the static configuration sc: where the version's
	// instances are reachable (host:port or a full URL).
	Endpoint string
	// Weight is the version's default traffic share used when a routing
	// config does not override it. Shares are relative, not percentages.
	Weight float64
}

// FindService returns the named service and whether it exists.
func (s *Strategy) FindService(name string) (Service, bool) {
	for _, svc := range s.Services {
		if svc.Name == name {
			return svc, true
		}
	}
	return Service{}, false
}

// FindVersion returns the named version of a service.
func (s Service) FindVersion(name string) (Version, bool) {
	for _, v := range s.Versions {
		if v.Name == name {
			return v, true
		}
	}
	return Version{}, false
}

// Automaton is A = ⟨Ω, S, s1, δ, F⟩. Ω (monitoring data) is external input
// supplied at evaluation time; S, s1 and F are explicit; δ is encoded in
// each state's thresholds and transition targets.
type Automaton struct {
	// States is S, keyed by State.ID in declaration order.
	States []State
	// Start is s1, the ID of the initial state.
	Start string
	// Finals is F ⊆ S: entering one of these states ends the strategy.
	Finals []string
}

// State returns the state with the given ID.
func (a *Automaton) State(id string) (*State, bool) {
	for i := range a.States {
		if a.States[i].ID == id {
			return &a.States[i], true
		}
	}
	return nil, false
}

// IsFinal reports whether id ∈ F.
func (a *Automaton) IsFinal(id string) bool {
	for _, f := range a.Finals {
		if f == id {
			return true
		}
	}
	return false
}

// State is s = ⟨C, T, W, Φ, η⟩: one phase of live testing.
//
// The per-check weights W live on the checks themselves (Check.Weight), and
// the user-selection function η is realized by the routing configurations'
// split mode plus the proxy's sticky-session machinery.
type State struct {
	// ID uniquely identifies the state within the automaton.
	ID string
	// Description is free-form documentation, e.g. "canary 5%".
	Description string
	// Duration is how long the state runs before its basic checks are
	// aggregated and δ fires. Zero means: as soon as every check has
	// completed its scheduled executions.
	Duration time.Duration
	// Checks is C: the checks executed in parallel while in this state.
	Checks []Check
	// Thresholds is T: the ordered tuple ⟨t1, …, tn⟩ partitioning ℤ into
	// n+1 disjoint ranges for δ.
	Thresholds []int
	// Transitions assigns a successor state ID to each threshold range;
	// len(Transitions) == len(Thresholds)+1. Transitions[i] handles the
	// range (t_i-1, t_i]; the last entry handles (t_n, +∞). A transition
	// equal to the state's own ID re-executes the state with all timers
	// and thresholds reset.
	Transitions []string
	// Routing is Φ: the dynamic routing configurations applied to the
	// affected services when the automaton enters this state.
	Routing []RoutingConfig
	// Sub nests a sub-rollout under this state: entering it schedules the
	// children as independent runs and the state's outcome (1 or 0) is
	// the quorum decision over their results. A sub-rollout state carries
	// no checks and no duration of its own — the children are its clock.
	Sub *SubRollout
}

// NextState implements δ(s, e): it selects the successor for the weighted
// aggregate outcome e. States with no thresholds keep a single transition.
func (s *State) NextState(e int) (string, error) {
	if len(s.Transitions) != len(s.Thresholds)+1 {
		return "", fmt.Errorf("state %q: %d transitions for %d thresholds",
			s.ID, len(s.Transitions), len(s.Thresholds))
	}
	return s.Transitions[RangeIndex(e, s.Thresholds)], nil
}

// RangeIndex returns the index of the threshold range containing e. The
// ordered thresholds ⟨t1, …, tn⟩ form the ranges (-∞, t1], (t1, t2], …,
// (tn, +∞), exactly as defined in §3.2 of the paper.
func RangeIndex(e int, thresholds []int) int {
	for i, t := range thresholds {
		if e <= t {
			return i
		}
	}
	return len(thresholds)
}

// Outcome aggregates the mapped results of a state's checks as the weighted
// linear combination Σ result_i · w_i → e ∈ ℤ, rounding half away from zero.
// results must be indexed like the state's Checks.
//
// A zero weight defaults to 1 for basic, compare, and sequential checks
// (the common case of omitting weights entirely). Interrupt-only checks
// (exception, burnrate) with zero weight are excluded from the
// combination: their primary role is the interrupt semantics, and the
// paper's running example (Figure 2) computes state outcomes from the
// basic checks only.
func (s *State) Outcome(results []int) (int, error) {
	if len(results) != len(s.Checks) {
		return 0, fmt.Errorf("state %q: %d results for %d checks",
			s.ID, len(results), len(s.Checks))
	}
	var sum float64
	for i, r := range results {
		w := s.Checks[i].Weight
		if w == 0 {
			if s.Checks[i].Kind.InterruptOnly() {
				continue
			}
			w = 1
		}
		sum += float64(r) * w
	}
	return roundHalfAway(sum), nil
}

func roundHalfAway(f float64) int {
	if f >= 0 {
		return int(f + 0.5)
	}
	return -int(-f + 0.5)
}
