package shop

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bifrost/internal/docstore"
	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
)

// fixture wires db + auth + search + product in-process.
type fixture struct {
	store   *docstore.Store
	db      *httptest.Server
	auth    *httptest.Server
	search  *httptest.Server
	product *httptest.Server

	productSvc *Product
	searchSvc  *Search
	token      string
}

func newFixture(t *testing.T, productProfile, searchProfile VariantProfile) *fixture {
	t.Helper()
	f := &fixture{store: docstore.New()}
	if _, err := SeedCatalog(f.store, 20); err != nil {
		t.Fatalf("SeedCatalog: %v", err)
	}
	if _, err := SeedUsers(f.store, 3); err != nil {
		t.Fatalf("SeedUsers: %v", err)
	}
	f.db = httptest.NewServer(docstore.NewServer(f.store).Handler())
	t.Cleanup(f.db.Close)

	authSvc := NewAuth(f.db.URL, metrics.NewRegistry())
	f.auth = httptest.NewServer(authSvc.Handler())
	t.Cleanup(f.auth.Close)

	f.searchSvc = NewSearch(SearchConfig{
		Profile: searchProfile,
		DBURL:   f.db.URL,
		AuthURL: f.auth.URL,
	})
	f.search = httptest.NewServer(f.searchSvc.Handler())
	t.Cleanup(f.search.Close)

	f.productSvc = NewProduct(ProductConfig{
		Profile:        productProfile,
		DBURL:          f.db.URL,
		AuthURL:        f.auth.URL,
		SearchURL:      f.search.URL,
		BaseConversion: 1.0, // deterministic sales in tests
	})
	f.product = httptest.NewServer(f.productSvc.Handler())
	t.Cleanup(f.product.Close)

	var login map[string]string
	err := httpx.PostJSON(context.Background(), f.auth.URL+"/auth/login",
		loginRequest{Email: "user-0@example.com", Password: "secret"}, &login)
	if err != nil {
		t.Fatalf("login: %v", err)
	}
	f.token = login["token"]
	return f
}

func (f *fixture) get(t *testing.T, path string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, f.product.URL+path, nil)
	req.Header.Set("Authorization", "Bearer "+f.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func (f *fixture) post(t *testing.T, path, body string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, f.product.URL+path, strings.NewReader(body))
	req.Header.Set("Authorization", "Bearer "+f.token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func counterValue(r *metrics.Registry, name string, match map[string]string) float64 {
	for _, p := range r.Gather() {
		if p.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if p.Labels[k] != v {
				ok = false
			}
		}
		if ok {
			return p.Value
		}
	}
	return 0
}

func TestLoginRequiredForAllRequests(t *testing.T) {
	f := newFixture(t, VariantProfile{Version: "product"}, VariantProfile{Version: "search"})
	req, _ := http.NewRequest(http.MethodGet, f.product.URL+"/products", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated status = %d, want 401", resp.StatusCode)
	}
}

func TestBadCredentialsRejected(t *testing.T) {
	f := newFixture(t, VariantProfile{Version: "product"}, VariantProfile{Version: "search"})
	err := httpx.PostJSON(context.Background(), f.auth.URL+"/auth/login",
		loginRequest{Email: "user-0@example.com", Password: "wrong"}, nil)
	if err == nil {
		t.Fatal("bad password accepted")
	}
}

func TestBuyDetailsProductsSearchFlow(t *testing.T) {
	f := newFixture(t, VariantProfile{Version: "productA"}, VariantProfile{Version: "search"})

	// Buy: writes to the database, no response body (paper's Buy).
	resp := f.post(t, "/products/buy", `{"productId":"p-001"}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("buy status = %d", resp.StatusCode)
	}

	// Details: read a single product.
	resp = f.get(t, "/products/p-001")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("details status = %d", resp.StatusCode)
	}

	// Products: the large response, now including the buyer count.
	var products []docstore.Document
	req, _ := http.NewRequest(http.MethodGet, f.product.URL+"/products", nil)
	req.Header.Set("Authorization", "Bearer "+f.token)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := jsonDecode(r2, &products); err != nil {
		t.Fatalf("decode products: %v", err)
	}
	if len(products) != 20 {
		t.Fatalf("products = %d", len(products))
	}
	var bought docstore.Document
	for _, p := range products {
		if p["_id"] == "p-001" {
			bought = p
		}
	}
	if bought["buyers"] != float64(1) {
		t.Errorf("buyers = %v, want 1", bought["buyers"])
	}

	// Search: delegates to the search service.
	resp = f.get(t, "/products/search?q=tv")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}

	// Metrics: sales recorded for productA; searches recorded.
	sales := counterValue(f.productSvc.Registry(), "shop_sales_total",
		map[string]string{"version": "productA"})
	if sales != 1 {
		t.Errorf("sales = %v, want 1", sales)
	}
	searches := counterValue(f.searchSvc.Registry(), "shop_searches_total", nil)
	if searches != 1 {
		t.Errorf("searches = %v, want 1", searches)
	}
	reqs := counterValue(f.productSvc.Registry(), "shop_requests_total",
		map[string]string{"op": "buy"})
	if reqs != 1 {
		t.Errorf("buy requests = %v, want 1", reqs)
	}
}

func TestErrorInjection(t *testing.T) {
	f := newFixture(t, VariantProfile{Version: "productB", ErrorRate: 1.0, Seed: 1},
		VariantProfile{Version: "search"})
	resp := f.get(t, "/products/p-002")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	errs := counterValue(f.productSvc.Registry(), "shop_request_errors_total",
		map[string]string{"version": "productB"})
	if errs != 1 {
		t.Errorf("errors = %v, want 1", errs)
	}
}

func TestLatencyInjection(t *testing.T) {
	f := newFixture(t, VariantProfile{Version: "product", ExtraLatency: 30 * time.Millisecond},
		VariantProfile{Version: "search"})
	start := time.Now()
	resp := f.get(t, "/products/p-003")
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if elapsed < 30*time.Millisecond {
		t.Errorf("elapsed = %v, want ≥ 30ms", elapsed)
	}
}

func TestConversionBoostShiftsSales(t *testing.T) {
	f := newFixture(t, VariantProfile{Version: "productA"}, VariantProfile{Version: "search"})
	f.productSvc.cfg.BaseConversion = 0.5
	f.productSvc.gate.profile.ConversionBoost = 1.4 // 70% conversion
	const n = 300
	for i := 0; i < n; i++ {
		resp := f.post(t, "/products/buy", `{"productId":"p-001"}`)
		resp.Body.Close()
	}
	sales := counterValue(f.productSvc.Registry(), "shop_sales_total",
		map[string]string{"version": "productA"})
	share := sales / n
	if share < 0.58 || share > 0.82 {
		t.Errorf("conversion = %.3f, want ≈ 0.70", share)
	}
}

func TestGatewayRouting(t *testing.T) {
	f := newFixture(t, VariantProfile{Version: "product"}, VariantProfile{Version: "search"})
	frontend := httptest.NewServer(NewFrontend().Handler())
	t.Cleanup(frontend.Close)
	gw := httptest.NewServer(NewGateway(frontend.URL, f.product.URL, f.auth.URL).Handler())
	t.Cleanup(gw.Close)

	// / → frontend HTML.
	resp, err := http.Get(gw.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("frontend content type = %q", ct)
	}

	// /auth/login → auth service.
	var login map[string]string
	err = httpx.PostJSON(context.Background(), gw.URL+"/auth/login",
		loginRequest{Email: "user-1@example.com", Password: "secret"}, &login)
	if err != nil || login["token"] == "" {
		t.Fatalf("login via gateway: %v (%v)", err, login)
	}

	// /products → product service (authorized).
	req, _ := http.NewRequest(http.MethodGet, gw.URL+"/products", nil)
	req.Header.Set("Authorization", "Bearer "+login["token"])
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("products via gateway = %d", r2.StatusCode)
	}
}

func TestSeedCatalogAndUsers(t *testing.T) {
	store := docstore.New()
	ids, err := SeedCatalog(store, 50)
	if err != nil || len(ids) != 50 {
		t.Fatalf("SeedCatalog: %v (%d)", err, len(ids))
	}
	emails, err := SeedUsers(store, 10)
	if err != nil || len(emails) != 10 {
		t.Fatalf("SeedUsers: %v", err)
	}
	n, _ := store.Count("products", nil)
	if n != 50 {
		t.Errorf("products = %d", n)
	}
	// Duplicate users rejected by the unique index.
	if _, err := store.Insert("users", docstore.Document{"email": emails[0]}); err == nil {
		t.Error("duplicate email accepted")
	}
}

func jsonDecode(resp *http.Response, v any) error {
	return httpx.ReadJSONBody(resp.Body, v)
}
