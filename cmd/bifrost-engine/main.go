// Command bifrost-engine runs the Bifrost engine daemon: the REST API the
// CLI talks to, the live dashboard, and the engine's own /metrics endpoint.
//
// Usage:
//
//	bifrost-engine -listen 127.0.0.1:7000 -journal-dir /var/lib/bifrost/journal
//
// Strategies are scheduled via the API (see cmd/bifrost) as YAML documents
// in the Bifrost DSL; routing updates are pushed over HTTP to the proxies
// named in each strategy's deployment section. Services fronted by a
// multi-replica proxy fleet (`proxies:` list) get every routing change
// fanned out to all replicas with bounded retries (-push-timeout,
// -push-retries), state entries succeed once -fleet-quorum replicas ack
// (0 = all), and a background reconciler re-pushes the current generation
// to lagging or restarted replicas every -reconcile-interval.
//
// With -journal-dir set, every run is recorded in a durable journal and the
// daemon recovers on startup: unfinished strategies resume from their
// recorded state (same phase, elapsed time preserved, routing re-applied)
// instead of being silently aborted by the restart. SIGTERM suspends runs
// without ending them, so rolling the control plane is safe mid-release.
// See docs/operations.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bifrost/internal/dashboard"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
	"bifrost/internal/httpx"
	"bifrost/internal/journal"
	"bifrost/internal/metrics"
	"bifrost/internal/sysmon"
	"bifrost/internal/target"
	"bifrost/internal/target/command"
	flagtarget "bifrost/internal/target/flag"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bifrost-engine:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7000", "address to serve the API and dashboard on")
	sampleEvery := flag.Duration("sysmon-interval", 5*time.Second, "resource sampling period (0 disables)")
	journalDir := flag.String("journal-dir", "",
		"directory for the durable run journal; restarts resume unfinished runs (empty disables)")
	fleetQuorum := flag.Int("fleet-quorum", 0,
		"proxy replica acks required per config push (0 = all replicas)")
	pushTimeout := flag.Duration("push-timeout", 5*time.Second,
		"per-attempt deadline for one proxy config push")
	pushRetries := flag.Int("push-retries", 4,
		"attempts per proxy config push (transient failures back off exponentially)")
	reconcileEvery := flag.Duration("reconcile-interval", 10*time.Second,
		"anti-entropy cadence: how often lagging/restarted proxy replicas are re-pushed")
	flag.Parse()

	registry := metrics.NewRegistry()
	fleet := engine.NewFleetConfigurator(
		engine.FleetQuorum(*fleetQuorum),
		engine.FleetRetry(engine.RetryPolicy{PushTimeout: *pushTimeout, MaxAttempts: *pushRetries}),
		engine.FleetReconcileInterval(*reconcileEvery),
	)
	// Enactment targets, dispatched per service by its deployment's
	// `target:` kind: the proxy fleet (default), client-side flag rulesets
	// served from /flags/, and declarative shell-outs.
	flagStore := flagtarget.NewStore(flagtarget.WithReconcileInterval(*reconcileEvery))
	targets := target.NewRegistry()
	for kind, t := range map[string]target.Target{
		target.KindProxy:   engine.NewProxyTarget(fleet),
		target.KindFlag:    flagStore,
		target.KindCommand: &command.Runner{},
	} {
		if err := targets.Register(kind, t); err != nil {
			return err
		}
	}
	configurator := engine.NewTargetConfigurator(targets)
	opts := []engine.Option{
		engine.WithConfigurator(configurator),
		engine.WithRegistry(registry),
	}
	if *journalDir != "" {
		j, err := journal.Open(*journalDir, journal.Options{})
		if err != nil {
			return err
		}
		opts = append(opts, engine.WithJournal(j))
	}
	eng := engine.New(opts...)
	if *journalDir != "" {
		// A journaled engine suspends on exit (runs stay resumable);
		// without a journal, stopping the daemon ends its runs.
		defer eng.Suspend()
		report, err := eng.Recover(dsl.Compile)
		if err != nil {
			return fmt.Errorf("journal recovery: %w", err)
		}
		for _, r := range report.Resumed {
			st := r.Status()
			log.Printf("recovered run %s: resumed in state %q (%s)",
				st.Strategy, st.Current, st.State)
		}
		if report.Finished > 0 {
			log.Printf("recovered %d finished run(s) as history", report.Finished)
		}
		for name, reason := range report.Skipped {
			log.Printf("warning: cannot resume run %s: %s", name, reason)
		}
	} else {
		defer eng.Shutdown()
	}

	if *sampleEvery > 0 {
		sampler := sysmon.New(registry, "engine", *sampleEvery, nil)
		sampler.Start()
		defer sampler.Stop()
	}

	// The API serves /api/v2 (run lifecycle resources, SSE event stream)
	// plus the /api/v1 aliases; the dashboard's page drives the v2 API.
	// The expander lets one POST schedule a whole matrix template.
	api := engine.NewAPI(eng, dsl.Compile).WithExpander(expandAll).Handler()
	dash := dashboard.New(eng).Handler()
	mux := http.NewServeMux()
	mux.Handle("/api/", api)
	mux.Handle("/-/healthy", api)
	mux.Handle("/dashboard", dash)
	mux.Handle("/dashboard/", dash)
	mux.Handle("/flags/", http.StripPrefix("/flags", flagStore.Handler()))
	mux.Handle("/metrics", registry.Handler())

	srv, err := httpx.NewServer(*listen, mux)
	if err != nil {
		return err
	}
	srv.Start()
	log.Printf("bifrost-engine listening on %s (dashboard at %s/dashboard)", srv.Addr(), srv.URL())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// expandAll adapts dsl.CompileAll to the API's expander hook.
func expandAll(src string) ([]engine.ExpandedStrategy, error) {
	runs, err := dsl.CompileAll(src)
	if err != nil {
		return nil, err
	}
	out := make([]engine.ExpandedStrategy, len(runs))
	for i, r := range runs {
		out[i] = engine.ExpandedStrategy{Strategy: r.Strategy, Source: r.Source, Vars: r.Vars}
	}
	return out, nil
}
