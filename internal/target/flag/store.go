// Package flag is the engine-side half of the feature-flag enactment
// target: a Store that renders each routing config into a Ruleset, serves
// it over HTTP to bifrost/flag SDK clients, and reports convergence from
// the generations those clients have actually polled — so a flag-targeted
// service surfaces through Status.Fleet and routing_degraded /
// routing_converged exactly like a proxy fleet does.
package flag

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	publicflag "bifrost/flag"
	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/httpx"
	"bifrost/internal/target"
)

// CodeNoRuleset is the problem code returned when no ruleset is active
// for a polled service.
const CodeNoRuleset = "no_ruleset"

// Store implements target.Target for the "flag" kind.
type Store struct {
	clk clock.Clock
	// ttl bounds how long a silent SDK instance still counts as a live
	// replica in convergence reports.
	ttl time.Duration
	// every / budget pace the engine's reconcile loop for this target.
	every  time.Duration
	budget time.Duration

	mu       sync.Mutex
	services map[string]*entry // by service name
}

// entry is the active ruleset for one service plus the SDK instances that
// have polled it.
type entry struct {
	strategy string
	set      publicflag.Ruleset
	// settling suppresses convergence reports between Apply and Settled,
	// mirroring the proxy fleet: a degraded event must never be journaled
	// ahead of the generation's routing_applied.
	settling  bool
	instances map[string]*instanceState
}

type instanceState struct {
	gen  int64
	seen time.Time
}

var (
	_ target.Target      = (*Store)(nil)
	_ target.Settler     = (*Store)(nil)
	_ target.Gate        = (*Store)(nil)
	_ target.Paced       = (*Store)(nil)
	_ target.ClockBinder = (*Store)(nil)
)

// Option configures a Store.
type Option func(*Store)

// WithInstanceTTL sets the liveness horizon for SDK instances
// (default 30s): an instance silent longer than this stops counting as a
// replica.
func WithInstanceTTL(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.ttl = d
		}
	}
}

// WithReconcileInterval sets the convergence-report cadence (default 10s).
func WithReconcileInterval(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.every = d
		}
	}
}

// NewStore creates an empty flag store.
func NewStore(opts ...Option) *Store {
	s := &Store{
		clk:      clock.Real{},
		ttl:      30 * time.Second,
		every:    10 * time.Second,
		budget:   2 * time.Second,
		services: make(map[string]*entry, 4),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// BindClock implements target.ClockBinder.
func (s *Store) BindClock(clk clock.Clock) {
	s.mu.Lock()
	s.clk = clk
	s.mu.Unlock()
}

// Apply implements target.Target: render the routing config into a
// ruleset and make it the service's current one. Rendering is
// deterministic (variants in sorted version order) for stable wire bytes.
func (s *Store) Apply(ctx context.Context, strat *core.Strategy, state *core.State,
	rc core.RoutingConfig, generation int64) error {

	set, err := RenderRuleset(strat, rc, generation)
	if err != nil {
		return err
	}
	s.mu.Lock()
	prev := s.services[rc.Service]
	e := &entry{
		strategy:  strat.Name,
		set:       set,
		settling:  true,
		instances: make(map[string]*instanceState, 4),
	}
	if prev != nil {
		// Instances survive reconfiguration: they keep the generation they
		// last polled and show as lagging until they poll the new one.
		e.instances = prev.instances
	}
	s.services[rc.Service] = e
	s.mu.Unlock()
	return nil
}

// RenderRuleset materializes a routing config into the SDK wire format,
// resolving version names to endpoints the way the proxy configurator
// does (scheme defaulting included).
func RenderRuleset(strat *core.Strategy, rc core.RoutingConfig, generation int64) (publicflag.Ruleset, error) {
	svc, ok := strat.FindService(rc.Service)
	if !ok {
		return publicflag.Ruleset{}, fmt.Errorf("flag: routing for unknown service %q", rc.Service)
	}
	names, shares, err := rc.NormalizedWeights()
	if err != nil {
		return publicflag.Ruleset{}, fmt.Errorf("flag: %w", err)
	}
	set := publicflag.Ruleset{
		Service:    rc.Service,
		Strategy:   strat.Name,
		Generation: generation,
		Sticky:     rc.Sticky,
	}
	if rc.Mode == core.RouteHeader {
		set.Mode = "header"
		set.Header = rc.Header
	}
	for i, name := range names {
		v, ok := svc.FindVersion(name)
		if !ok {
			return publicflag.Ruleset{}, fmt.Errorf("flag: unknown version %q of %q", name, rc.Service)
		}
		set.Variants = append(set.Variants, publicflag.Variant{
			Name:     name,
			Endpoint: endpointURL(v.Endpoint),
			Weight:   shares[i],
		})
	}
	return set, nil
}

func endpointURL(endpoint string) string {
	if strings.Contains(endpoint, "://") {
		return endpoint
	}
	return "http://" + endpoint
}

// Convergence implements target.Target: for each of the strategy's
// settled services, report how many live SDK instances have polled the
// current generation. Services no instance has polled recently report
// nothing — there is no fleet to speak about yet.
func (s *Store) Convergence(ctx context.Context, strategy string) []target.Convergence {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	var out []target.Convergence
	for service, e := range s.services {
		if e.strategy != strategy || e.settling {
			continue
		}
		c := target.Convergence{Service: service, Generation: e.set.Generation}
		for id, inst := range e.instances {
			if now.Sub(inst.seen) > s.ttl {
				continue
			}
			c.Replicas++
			if inst.gen >= e.set.Generation {
				c.Acked++
			} else {
				c.Lagging = append(c.Lagging, id)
			}
		}
		if c.Replicas == 0 {
			continue
		}
		sort.Strings(c.Lagging)
		c.Converged = c.Acked == c.Replicas
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// Retire implements target.Target.
func (s *Store) Retire(strategy string) {
	s.mu.Lock()
	for service, e := range s.services {
		if e.strategy == strategy {
			delete(s.services, service)
		}
	}
	s.mu.Unlock()
}

// Settled implements target.Settler.
func (s *Store) Settled(strategy, service string) {
	s.mu.Lock()
	if e := s.services[service]; e != nil && e.strategy == strategy {
		e.settling = false
	}
	s.mu.Unlock()
}

// WithCurrent implements target.Gate: fn runs under the store lock only
// while generation is still the service's settled current ruleset, so a
// convergence report about a superseded ruleset is dropped at publish.
func (s *Store) WithCurrent(strategy, service string, generation int64, fn func()) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.services[service]
	if e == nil || e.strategy != strategy || e.settling || e.set.Generation != generation {
		return false
	}
	fn()
	return true
}

// ReconcileInterval implements target.Paced.
func (s *Store) ReconcileInterval() time.Duration { return s.every }

// PassBudget implements target.Paced. Convergence is a pure in-memory
// sweep, so the budget only needs to cover lock contention.
func (s *Store) PassBudget() time.Duration { return s.budget }

// Handler serves rulesets to SDK clients: GET /{service} returns the
// service's current ruleset and records the polling instance (from the
// X-Bifrost-Flag-Instance header) as holding that generation.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpx.WriteProblem(w, httpx.Problem{
				Status: http.StatusMethodNotAllowed, Code: "method_not_allowed",
			})
			return
		}
		service := strings.Trim(r.URL.Path, "/")
		if service == "" || strings.Contains(service, "/") {
			httpx.WriteProblem(w, httpx.Problem{
				Status: http.StatusNotFound, Code: CodeNoRuleset,
				Detail: "expected /{service}",
			})
			return
		}
		s.mu.Lock()
		e := s.services[service]
		if e == nil {
			s.mu.Unlock()
			httpx.WriteProblem(w, httpx.Problem{
				Status: http.StatusNotFound, Code: CodeNoRuleset,
				Detail: fmt.Sprintf("no active ruleset for service %q", service),
			})
			return
		}
		set := e.set
		if id := r.Header.Get(publicflag.InstanceHeader); id != "" {
			// The instance holds this generation once it reads the body;
			// recording at serve time is the convergence ack.
			e.instances[id] = &instanceState{gen: set.Generation, seen: s.clk.Now()}
		}
		s.mu.Unlock()
		httpx.WriteJSON(w, http.StatusOK, set)
	})
}
