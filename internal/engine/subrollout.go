package engine

// Hierarchical rollouts: a parent run entering a state with a
// core.SubRollout schedules each child strategy as an independent run —
// through the ChildRunner, so in a cluster they shard across replicas,
// journal into their own partitions, and recover independently — then
// watches their terminal events and decides the state's outcome by quorum.
//
// The parent journals child-linkage events (child_scheduled, child_update,
// child_terminal) into its OWN partition. The mirror reduces them into
// Status.Children, which is also the recovery seed: a replica adopting the
// parent mid-sub-rollout replays those events, re-schedules the children
// (a no-op for ones already running), reconciles against their live
// status for terminals missed while down, and continues the quorum count
// without re-publishing what the journal already holds. Double-applying
// the promote is prevented by journal fencing: the previous owner's
// transition append is rejected with ErrFenced once the lease moved.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bifrost/internal/core"
)

// childPollInterval paces the status-poll fallback of a sub-rollout state:
// watcher events are the primary signal, the poll catches terminals that a
// dropped subscription or an adoption gap would otherwise lose.
const childPollInterval = 2 * time.Second

// childAbortBudget bounds the best-effort child aborts issued when a
// sub-rollout fails under the abort policy, is rolled back manually, or
// its parent run is aborted.
const childAbortBudget = 10 * time.Second

// ChildRunner schedules and observes sub-rollout child runs on behalf of a
// parent. The default implementation enacts them in-process; cluster
// deployments install an HTTP-backed runner (HTTPChildRunner) so children
// go through the normal schedule path and shard across the fleet.
type ChildRunner interface {
	// Schedule starts the child run. Scheduling a child that is already
	// running or already finished is a no-op — recovery re-links by
	// re-scheduling everything it cannot prove terminal.
	Schedule(ctx context.Context, ref core.ChildRef) error
	// Watch streams the child's events until stop is called.
	Watch(ctx context.Context, name string) (<-chan Event, func(), error)
	// Status fetches the child's current status.
	Status(ctx context.Context, name string) (Status, error)
	// Abort stops the child run (best effort; finished children tolerate it).
	Abort(ctx context.Context, name string) error
}

// localChildRunner enacts children in the parent's own engine.
type localChildRunner struct {
	eng *Engine
}

func (l localChildRunner) Schedule(ctx context.Context, ref core.ChildRef) error {
	if _, ok := l.eng.Run(ref.Name); ok {
		return nil // already known (running or finished): recovery re-link
	}
	_, err := l.eng.EnactSource(ref.Strategy, ref.Source)
	if errors.Is(err, ErrAlreadyRunning) {
		return nil
	}
	return err
}

func (l localChildRunner) Watch(ctx context.Context, name string) (<-chan Event, func(), error) {
	raw, cancel := l.eng.Subscribe(256)
	out := make(chan Event, 64)
	go func() {
		defer close(out)
		for ev := range raw {
			if ev.Strategy != name {
				continue
			}
			select {
			case out <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, cancel, nil
}

func (l localChildRunner) Status(ctx context.Context, name string) (Status, error) {
	r, ok := l.eng.Run(name)
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return r.Status(), nil
}

func (l localChildRunner) Abort(ctx context.Context, name string) error {
	err := l.eng.Abort(name)
	if errors.Is(err, ErrNotFound) {
		return nil
	}
	return err
}

// HTTPChildRunner schedules sub-rollout children through an engine API
// endpoint — in HA deployments the cluster handler behind it places each
// child on the replica winning its lease, exactly like an operator POST.
type HTTPChildRunner struct {
	Client *Client
}

func (h HTTPChildRunner) Schedule(ctx context.Context, ref core.ChildRef) error {
	if _, err := h.Client.Get(ctx, ref.Name); err == nil {
		return nil // already scheduled (recovery re-link)
	}
	if _, err := h.Client.Schedule(ctx, ref.Source); err != nil {
		// Lost the race against our own earlier schedule surviving a
		// retry? The run existing is the success condition.
		if _, gerr := h.Client.Get(ctx, ref.Name); gerr == nil {
			return nil
		}
		return err
	}
	return nil
}

func (h HTTPChildRunner) Watch(ctx context.Context, name string) (<-chan Event, func(), error) {
	return h.Client.Watch(ctx, name, 32)
}

func (h HTTPChildRunner) Status(ctx context.Context, name string) (Status, error) {
	return h.Client.Get(ctx, name)
}

func (h HTTPChildRunner) Abort(ctx context.Context, name string) error {
	return h.Client.Abort(ctx, name)
}

// childTrack is the parent's bookkeeping for one sub-rollout child.
type childTrack struct {
	ref    core.ChildRef
	phase  string // automaton state the child is in
	state  string // run state (running, paused, completed, ...)
	done   bool
	passed bool
	// announced marks the child_scheduled event as already on the stream
	// (seeded from a recovered parent's mirrored Children).
	announced bool
}

// executeSubRollout drives one sub-rollout state: schedule the children,
// mirror their progress as child-linkage events, and resolve the state's
// outcome (1: quorum of children passed, 0: it cannot be reached anymore)
// through the normal δ mapping. Operator promote/rollback override the
// quorum like any other gate; pause is rejected — the children run
// independently and holding the parent would not hold them.
func (r *Run) executeSubRollout(ctx context.Context, state *core.State) (stepResult, error) {
	sub := state.Sub
	clk := r.engine.clk
	runner := r.engine.children

	tracks := make(map[string]*childTrack, len(sub.Children))
	order := make([]string, 0, len(sub.Children))
	for i := range sub.Children {
		ref := sub.Children[i]
		tracks[ref.Name] = &childTrack{ref: ref}
		order = append(order, ref.Name)
	}
	// Recovery re-link: journal replay reduced the parent's child-linkage
	// events into Status.Children. Seed tracking from it so finished
	// children stay decided and nothing already journaled is re-published.
	r.mu.Lock()
	for _, cs := range r.status.Children {
		if t, ok := tracks[cs.Name]; ok {
			t.phase, t.state = cs.Phase, cs.State
			t.done, t.passed = cs.Passed || cs.Failed, cs.Passed
			t.announced = true
		}
	}
	r.mu.Unlock()

	// setChildStatus maintains the live run's own Children mirror
	// (copy-on-write: the journal mirror holds a reduction of the same
	// events in its own slice, and neither may mutate a shared array).
	setChildStatus := func(t *childTrack) {
		cs := ChildStatus{
			Name: t.ref.Name, Region: t.ref.Region,
			State: t.state, Phase: t.phase,
		}
		if t.done {
			cs.Passed = t.passed
			cs.Failed = !t.passed
		}
		r.mu.Lock()
		kids := append([]ChildStatus(nil), r.status.Children...)
		replaced := false
		for i := range kids {
			if kids[i].Name == cs.Name {
				kids[i] = cs
				replaced = true
				break
			}
		}
		if !replaced {
			kids = append(kids, cs)
		}
		r.status.Children = kids
		r.mu.Unlock()
	}
	publishChild := func(typ EventType, t *childTrack, detail string, outcome int) {
		setChildStatus(t)
		r.publish(Event{
			Type: typ, State: state.ID,
			Child: t.ref.Name, Region: t.ref.Region,
			ChildState: t.state, ChildPhase: t.phase,
			Detail: detail, Outcome: outcome,
			Time: clk.Now(),
		})
	}
	applyTerminal := func(t *childTrack, runState, finalPhase string) {
		if t.done {
			return
		}
		t.done = true
		t.state = runState
		if finalPhase != "" {
			t.phase = finalPhase
		}
		t.passed = runState == string(RunCompleted) &&
			(t.ref.SuccessFinal == "" || t.phase == t.ref.SuccessFinal)
		detail, outcome := "failed", 0
		if t.passed {
			detail, outcome = "passed", 1
		}
		publishChild(EventChildTerminal, t,
			"region "+t.ref.RegionOrName()+" "+detail, outcome)
	}
	abortRunning := func() {
		actx, cancel := context.WithTimeout(context.Background(), childAbortBudget)
		defer cancel()
		for _, name := range order {
			if t := tracks[name]; !t.done {
				_ = runner.Abort(actx, t.ref.Name)
			}
		}
	}

	// Schedule every undecided child and attach its watcher. Watchers feed
	// one merged channel; the forwarding goroutines die with watchCtx.
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	updates := make(chan Event, 64)
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for _, name := range order {
		t := tracks[name]
		if t.done {
			continue
		}
		// A few brief retries ride out HA races (a child lease mid-adoption
		// when the parent itself was just adopted by a new replica).
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			if err = runner.Schedule(ctx, t.ref); err == nil {
				break
			}
			select {
			case <-time.After(250 * time.Millisecond):
			case <-ctx.Done():
				return stepResult{}, ctx.Err()
			case <-r.engine.stopping:
				return stepResult{}, errSuspended
			case <-r.evicted:
				return stepResult{}, errSuspended
			}
		}
		if err != nil {
			return stepResult{}, fmt.Errorf("schedule sub-rollout child %s: %w", name, err)
		}
		if !t.announced {
			t.state = string(RunRunning)
			t.announced = true
			publishChild(EventChildScheduled, t, "region "+t.ref.RegionOrName(), 0)
		}
		ch, stop, err := runner.Watch(watchCtx, name)
		if err != nil {
			return stepResult{}, fmt.Errorf("watch sub-rollout child %s: %w", name, err)
		}
		stops = append(stops, stop)
		go func() {
			for ev := range ch {
				select {
				case updates <- ev:
				case <-watchCtx.Done():
					return
				}
			}
		}()
	}

	// poll reconciles against the children's live status: a child's
	// terminal event lands in ITS partition, so an adopting replica (or a
	// parent whose watcher dropped events) must ask rather than wait.
	poll := func() {
		for _, name := range order {
			t := tracks[name]
			if t.done {
				continue
			}
			st, err := runner.Status(ctx, name)
			if err != nil {
				continue // not adopted anywhere yet, or transient API error
			}
			if st.State.terminal() {
				applyTerminal(t, string(st.State), st.Current)
				continue
			}
			if st.Current != "" && (st.Current != t.phase || string(st.State) != t.state) {
				t.phase, t.state = st.Current, string(st.State)
				publishChild(EventChildUpdate, t, "", 0)
			}
		}
	}
	poll()

	need := sub.QuorumOrAll()
	policy := sub.FailPolicy()
	// decide evaluates the quorum after every change. Outcome 1 as soon as
	// enough regions passed (still-running siblings keep rolling out on
	// their own); outcome 0 depends on the failure policy: fallback fails
	// the parent only once the quorum is unreachable, abort fails it on the
	// first child failure, continue waits for every region to finish.
	decide := func() (bool, int, string) {
		passes, fails, running := 0, 0, 0
		for _, t := range tracks {
			switch {
			case !t.done:
				running++
			case t.passed:
				passes++
			default:
				fails++
			}
		}
		if passes >= need {
			return true, 1, "quorum"
		}
		switch policy {
		case core.ChildFailAbort:
			if fails > 0 {
				return true, 0, "child_failure"
			}
		case core.ChildFailContinue:
			if running == 0 {
				return true, 0, "quorum_failed"
			}
		default: // fallback: contain failures, fail early only when hopeless
			if passes+running < need {
				return true, 0, "quorum_failed"
			}
		}
		return false, 0, ""
	}

	ticker := clk.NewTicker(childPollInterval)
	defer ticker.Stop()
	for {
		if decided, outcome, cause := decide(); decided {
			if cause == "child_failure" {
				// abort policy: the first region failing kills its siblings.
				abortRunning()
			}
			next, err := state.NextState(outcome)
			if err != nil {
				return stepResult{}, err
			}
			return stepResult{next: next, outcome: outcome, cause: cause}, nil
		}
		select {
		case ev := <-updates:
			t, ok := tracks[ev.Strategy]
			if !ok || t.done {
				continue
			}
			switch ev.Type {
			case EventStateEntered:
				if t.phase != ev.State || t.state != string(RunRunning) {
					t.phase, t.state = ev.State, string(RunRunning)
					publishChild(EventChildUpdate, t, ev.Detail, 0)
				}
			case EventPaused:
				t.state = string(RunPaused)
				publishChild(EventChildUpdate, t, "paused", 0)
			case EventResumed:
				t.state = string(RunRunning)
				publishChild(EventChildUpdate, t, "resumed", 0)
			case EventCompleted:
				applyTerminal(t, string(RunCompleted), "")
			case EventAborted:
				applyTerminal(t, string(RunAborted), "")
			case EventError:
				applyTerminal(t, string(RunFailed), "")
			}
		case <-ticker.C():
			poll()
		case <-r.engine.stopping:
			return stepResult{}, errSuspended
		case <-r.evicted:
			return stepResult{}, errSuspended
		case msg := <-r.controls:
			switch msg.kind {
			case ctrlPause:
				msg.reply <- ctrlReply{err: fmt.Errorf(
					"engine: sub-rollout state %q cannot be paused (its children run independently); promote, rollback, or abort instead",
					state.ID)}
			case ctrlResume:
				msg.reply <- ctrlReply{err: ErrNotPaused}
			case ctrlPromote, ctrlRollback:
				target, err := r.manualTarget(state, msg)
				if err != nil {
					msg.reply <- ctrlReply{err: err}
					continue
				}
				if msg.kind == ctrlRollback {
					// A manual failure verdict abandons the rollout
					// everywhere; a manual promote lets the remaining
					// regions finish on their own, like a quorum pass.
					abortRunning()
				}
				r.publishGateDecision(state, msg.kind, target)
				msg.reply <- ctrlReply{}
				return stepResult{next: target, cause: msg.kind.String()}, nil
			}
		case <-ctx.Done():
			// Aborting the parent aborts the tree.
			abortRunning()
			return stepResult{}, ctx.Err()
		}
	}
}
