// Flag-vs-proxy data-plane bench (BENCH_7.json): how much a routing
// decision costs when it is evaluated inside the application by the
// bifrost/flag SDK, versus paying a full HTTP hop through a Bifrost proxy,
// versus the direct-to-backend baseline. The flag target's pitch is "the
// proxy's decide logic without the proxy's network hop" — this benchmark
// puts a number on it on the committing machine.

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"bifrost/flag"
	"bifrost/internal/httpx"
	"bifrost/internal/proxy"
)

// FlagBenchConfig sizes the flag-vs-proxy micro-benchmarks. The zero value
// is filled with defaults for a committed baseline run; CI smoke passes
// tiny counts.
type FlagBenchConfig struct {
	// Decisions is the number of SDK Decide calls timed (pure in-process
	// evaluation, sticky cohort hashing).
	Decisions int `json:"decisions"`
	// Requests is the number of HTTP requests timed per data plane
	// (direct to the backend, and through a Bifrost proxy).
	Requests int `json:"requests"`
}

func (c FlagBenchConfig) withDefaults() FlagBenchConfig {
	if c.Decisions <= 0 {
		c.Decisions = 2_000_000
	}
	if c.Requests <= 0 {
		c.Requests = 5_000
	}
	return c
}

// FlagBenchResult is the committed BENCH_7.json shape.
type FlagBenchResult struct {
	Config FlagBenchConfig `json:"config"`

	// Flag SDK: cost of one client-side routing decision.
	FlagDecideNsPerOp   float64 `json:"flagDecideNsPerOp"`
	FlagDecisionsPerSec float64 `json:"flagDecisionsPerSec"`

	// Direct baseline: request straight to the backend, no routing layer.
	DirectMeanMs float64 `json:"directMeanMs"`
	DirectP99Ms  float64 `json:"directP99Ms"`

	// Proxy hop: the same request through a sticky Bifrost proxy.
	ProxyMeanMs float64 `json:"proxyMeanMs"`
	ProxyP99Ms  float64 `json:"proxyP99Ms"`

	// ProxyHopOverheadMs is proxy mean minus direct mean: the network +
	// forwarding cost a flag-evaluated service never pays per request.
	ProxyHopOverheadMs float64 `json:"proxyHopOverheadMs"`
}

// RunFlagBench measures the three data planes a strategy can route
// through: in-process flag decisions, direct backend requests, and the
// proxy hop.
func RunFlagBench(cfg FlagBenchConfig) (*FlagBenchResult, error) {
	cfg = cfg.withDefaults()
	res := &FlagBenchResult{Config: cfg}

	// --- Flag SDK decide path: sticky evaluation over a 90/10 split,
	// identical hashing to the proxy's cohort assignment.
	sdk := &flag.Client{Service: "bench"}
	err := sdk.Load(flag.Ruleset{
		Service: "bench", Strategy: "bench7", Generation: 1, Sticky: true,
		Variants: []flag.Variant{
			{Name: "stable", Endpoint: "http://127.0.0.1:9101", Weight: 0.9},
			{Name: "canary", Endpoint: "http://127.0.0.1:9102", Weight: 0.1},
		},
	})
	if err != nil {
		return nil, err
	}
	users := make([]string, 4096)
	for i := range users {
		users[i] = fmt.Sprintf("user-%d", i)
	}
	start := time.Now()
	for i := 0; i < cfg.Decisions; i++ {
		if _, ok := sdk.Decide(users[i&(len(users)-1)]); !ok {
			return nil, fmt.Errorf("flagbench: no decision")
		}
	}
	elapsed := time.Since(start)
	res.FlagDecideNsPerOp = float64(elapsed.Nanoseconds()) / float64(cfg.Decisions)
	res.FlagDecisionsPerSec = float64(cfg.Decisions) / elapsed.Seconds()

	// --- Backend shared by both HTTP planes.
	backend, err := httpx.NewServer("127.0.0.1:0", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok"))
		}))
	if err != nil {
		return nil, err
	}
	backend.Start()
	defer shutdownServer(backend)

	p, err := proxy.New("bench", proxy.Config{
		Service: "bench", Generation: 1, Sticky: true,
		Backends: []proxy.Backend{{Version: "stable", URL: backend.URL(), Weight: 1}},
	})
	if err != nil {
		return nil, err
	}
	proxySrv, err := httpx.NewServer("127.0.0.1:0", p)
	if err != nil {
		return nil, err
	}
	proxySrv.Start()
	defer shutdownServer(proxySrv)

	client := &http.Client{Timeout: 10 * time.Second}
	res.DirectMeanMs, res.DirectP99Ms, err = timeRequests(client, backend.URL(), cfg.Requests)
	if err != nil {
		return nil, err
	}
	res.ProxyMeanMs, res.ProxyP99Ms, err = timeRequests(client, proxySrv.URL(), cfg.Requests)
	if err != nil {
		return nil, err
	}
	res.ProxyHopOverheadMs = res.ProxyMeanMs - res.DirectMeanMs
	return res, nil
}

func shutdownServer(s *httpx.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
}

// timeRequests issues n sequential GETs (after a small warmup) and
// reports mean and p99 latency in milliseconds.
func timeRequests(client *http.Client, url string, n int) (mean, p99 float64, err error) {
	doOne := func() error {
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.Body.Close()
	}
	warm := 16
	if warm > n {
		warm = n
	}
	for i := 0; i < warm; i++ {
		if err := doOne(); err != nil {
			return 0, 0, err
		}
	}
	lat := make([]float64, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := doOne(); err != nil {
			return 0, 0, err
		}
		lat[i] = float64(time.Since(start).Microseconds()) / 1000.0
	}
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	return sum / float64(n), lat[(n-1)*99/100], nil
}

// WriteJSON emits the result as indented JSON (the BENCH_7.json format).
func (r *FlagBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
