package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/dsl"
	"bifrost/internal/httpx"
	"bifrost/internal/proxy"
)

// fastRetry keeps unit tests quick: real-clock backoff in the millisecond
// range instead of the production 100ms → 2s schedule.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		PushTimeout: time.Second,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	}
}

// fakeReplica is an in-process proxy admin endpoint with scriptable
// failures: setErrs are consumed one per SetConfig attempt (nil = accept).
type fakeReplica struct {
	mu         sync.Mutex
	cfg        proxy.Config
	setErrs    []error
	getErr     error
	healthyErr error
	sets       int
}

func (f *fakeReplica) SetConfig(ctx context.Context, cfg proxy.Config) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sets++
	if len(f.setErrs) > 0 {
		err := f.setErrs[0]
		f.setErrs = f.setErrs[1:]
		if err != nil {
			return err
		}
	}
	if cfg.Generation < f.cfg.Generation {
		return &httpx.Problem{Status: http.StatusConflict, Code: proxy.CodeStaleGeneration}
	}
	f.cfg = cfg
	return nil
}

func (f *fakeReplica) GetConfig(ctx context.Context) (proxy.Config, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.getErr != nil {
		return proxy.Config{}, f.getErr
	}
	return f.cfg, nil
}

func (f *fakeReplica) Healthy(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.healthyErr
}

func (f *fakeReplica) setCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sets
}

func (f *fakeReplica) generation() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Generation
}

// crash simulates the replica process dying: admin API unreachable.
func (f *fakeReplica) crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.getErr = errors.New("dial tcp: connection refused")
	f.healthyErr = errors.New("dial tcp: connection refused")
}

// reboot simulates the replica coming back empty: reachable, no config.
func (f *fakeReplica) reboot() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.getErr, f.healthyErr = nil, nil
	f.cfg = proxy.Config{}
	f.setErrs = nil
}

// fleetFixture is a strategy with one service fronted by three replicas.
func fleetFixture() (*core.Strategy, core.RoutingConfig, map[string]*fakeReplica, FleetOption) {
	replicas := map[string]*fakeReplica{
		"r1": {}, "r2": {}, "r3": {},
	}
	s := &core.Strategy{
		Name: "fleet-unit",
		Services: []core.Service{{
			Name:      "shop",
			ProxyURLs: []string{"r1", "r2", "r3"},
			Versions: []core.Version{
				{Name: "stable", Endpoint: "127.0.0.1:9001"},
				{Name: "canary", Endpoint: "127.0.0.1:9002"},
			},
		}},
	}
	rc := core.RoutingConfig{Service: "shop", Weights: map[string]float64{"stable": 9, "canary": 1}}
	dial := fleetDial(func(url string) replicaClient { return replicas[url] })
	return s, rc, replicas, dial
}

// TestBuildProxyConfigDeterministic proves satellite #2: repeated renders
// of the same routing config are byte-identical on the wire — backends in
// sorted version order, shadows sorted — which the fleet reconciler's
// convergence comparison and idempotent re-pushes rely on.
func TestBuildProxyConfigDeterministic(t *testing.T) {
	s := &core.Strategy{
		Name: "det",
		Services: []core.Service{{
			Name: "shop",
			Versions: []core.Version{
				{Name: "a", Endpoint: "127.0.0.1:1"},
				{Name: "b", Endpoint: "127.0.0.1:2"},
				{Name: "c", Endpoint: "127.0.0.1:3"},
				{Name: "z", Endpoint: "127.0.0.1:4"},
			},
		}},
	}
	rc := core.RoutingConfig{
		Service: "shop",
		Weights: map[string]float64{"c": 1, "a": 2, "b": 3},
		Shadows: []core.ShadowRule{
			{Source: "b", Target: "z", Percent: 5},
			{Source: "a", Target: "z", Percent: 10},
		},
	}
	first, err := BuildProxyConfig(s, rc, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(first)
	if first.Backends[0].Version != "a" || first.Backends[2].Version != "c" {
		t.Fatalf("backends not sorted: %+v", first.Backends)
	}
	if first.Shadows[0].Source != "a" {
		t.Fatalf("shadows not sorted: %+v", first.Shadows)
	}
	for i := 0; i < 50; i++ {
		// Rebuild the weights map each round so Go's map iteration order
		// gets a fresh chance to shuffle a nondeterministic render.
		rc.Weights = map[string]float64{"b": 3, "c": 1, "a": 2}
		cfg, err := BuildProxyConfig(s, rc, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(cfg)
		if string(got) != string(want) {
			t.Fatalf("render %d differs:\n%s\n%s", i, got, want)
		}
	}
}

// TestPushWithRetryTransientThenSuccess: transient failures (network
// errors, 5xx) are retried with backoff and the push eventually lands.
func TestPushWithRetryTransientThenSuccess(t *testing.T) {
	f := &fakeReplica{setErrs: []error{
		errors.New("connection refused"),
		&httpx.Error{StatusCode: http.StatusServiceUnavailable, Message: "starting up"},
	}}
	err := pushWithRetry(context.Background(), clock.Real{}, f,
		proxy.Config{Service: "shop", Generation: 1}, fastRetry())
	if err != nil {
		t.Fatalf("push failed despite retry budget: %v", err)
	}
	if f.setCalls() != 3 {
		t.Errorf("attempts = %d, want 3", f.setCalls())
	}
	if f.generation() != 1 {
		t.Errorf("generation = %d, want 1", f.generation())
	}
}

// TestPushWithRetryPermanentFailsImmediately: typed 4xx rejections
// (invalid_config, stale_generation) are never retried.
func TestPushWithRetryPermanentFailsImmediately(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"invalid_config", &httpx.Problem{Status: http.StatusBadRequest, Code: proxy.CodeInvalidConfig}},
		{"stale_generation", &httpx.Problem{Status: http.StatusConflict, Code: proxy.CodeStaleGeneration}},
		{"legacy 409 envelope", &httpx.Error{StatusCode: http.StatusConflict, Message: "stale"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := &fakeReplica{setErrs: []error{tc.err, tc.err, tc.err}}
			err := pushWithRetry(context.Background(), clock.Real{}, f,
				proxy.Config{Service: "shop", Generation: 1}, fastRetry())
			if err == nil {
				t.Fatal("permanent rejection reported as success")
			}
			if f.setCalls() != 1 {
				t.Errorf("attempts = %d, want 1 (no retry on permanent failure)", f.setCalls())
			}
		})
	}
}

// TestFleetQuorum: with quorum 2 of 3, one replica permanently down does
// not fail the state entry; with quorum all (default) it does. Each
// scenario gets its own fixture — an early quorum return leaves the dead
// replica's retry goroutine running briefly in the background.
func TestFleetQuorum(t *testing.T) {
	down := errors.New("connection refused")
	manyDown := func() []error { return []error{down, down, down, down, down, down} }

	t.Run("quorum 2 of 3 tolerates a dead replica", func(t *testing.T) {
		s, rc, replicas, dial := fleetFixture()
		replicas["r3"].setErrs = manyDown()
		fc := NewFleetConfigurator(FleetQuorum(2), FleetRetry(fastRetry()), dial)
		if err := fc.Configure(context.Background(), s, &core.State{}, rc, 3); err != nil {
			t.Fatalf("quorum 2/3 push failed: %v", err)
		}
		if replicas["r1"].generation() != 3 || replicas["r2"].generation() != 3 {
			t.Errorf("healthy replicas not configured: r1=%d r2=%d",
				replicas["r1"].generation(), replicas["r2"].generation())
		}
	})

	t.Run("quorum all fails on a dead replica", func(t *testing.T) {
		s, rc, replicas, dial := fleetFixture()
		replicas["r3"].setErrs = manyDown()
		all := NewFleetConfigurator(FleetRetry(fastRetry()), dial)
		err := all.Configure(context.Background(), s, &core.State{}, rc, 4)
		if err == nil {
			t.Fatal("quorum all with a dead replica reported success")
		}
		if got := err.Error(); !strings.Contains(got, "2/3") || !strings.Contains(got, "r3") {
			t.Errorf("error %q does not name the partial result and failed replica", got)
		}
	})
}

// hungReplica accepts the connection and never answers: every push
// attempt burns its full PushTimeout.
type hungReplica struct{}

func (hungReplica) SetConfig(ctx context.Context, cfg proxy.Config) error {
	<-ctx.Done()
	return ctx.Err()
}
func (hungReplica) GetConfig(ctx context.Context) (proxy.Config, error) {
	<-ctx.Done()
	return proxy.Config{}, ctx.Err()
}
func (hungReplica) Healthy(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestFleetQuorumUnblocksDespiteHungReplica: once the quorum has acked,
// Configure returns without waiting out the hung replica's full retry
// schedule — a minority of wedged admin APIs must not delay every state
// transition of the automaton.
func TestFleetQuorumUnblocksDespiteHungReplica(t *testing.T) {
	s, rc, replicas, _ := fleetFixture()
	dial := fleetDial(func(url string) replicaClient {
		if url == "r3" {
			return hungReplica{}
		}
		return replicas[url]
	})
	// 3 attempts × 2s timeout ≈ 6s for the hung replica; quorum must not
	// wait for any of it.
	fc := NewFleetConfigurator(FleetQuorum(2), FleetRetry(RetryPolicy{
		PushTimeout: 2 * time.Second,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	}), dial)
	start := time.Now()
	if err := fc.Configure(context.Background(), s, &core.State{}, rc, 9); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Configure took %v with quorum acked instantly, want well under the 2s push timeout", elapsed)
	}
	if replicas["r1"].generation() != 9 || replicas["r2"].generation() != 9 {
		t.Errorf("quorum replicas not configured: r1=%d r2=%d",
			replicas["r1"].generation(), replicas["r2"].generation())
	}
}

// TestFleetReconcileSkipsSettlingFleet: while a state entry's own fan-out
// is still running, a reconcile pass must not report (and so not degrade)
// the fleet — a replica mid-first-delivery is not lagging, and a degraded
// event must never precede the generation's routing_applied.
func TestFleetReconcileSkipsSettlingFleet(t *testing.T) {
	s, rc, replicas, _ := fleetFixture()
	dial := fleetDial(func(url string) replicaClient {
		if url == "r3" {
			return hungReplica{}
		}
		return replicas[url]
	})
	fc := NewFleetConfigurator(FleetRetry(RetryPolicy{
		PushTimeout: 400 * time.Millisecond,
		MaxAttempts: 1,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  time.Millisecond,
	}), dial)
	done := make(chan error, 1)
	go func() { done <- fc.Configure(context.Background(), s, &core.State{}, rc, 2) }()
	time.Sleep(50 * time.Millisecond) // r1/r2 acked; r3 hangs out its push timeout
	if got := fc.reconcile(context.Background(), s.Name); len(got) != 0 {
		t.Errorf("reconcile during settling fan-out = %+v, want none", got)
	}
	if err := <-done; err == nil {
		t.Fatal("quorum all with a hung replica reported success")
	}
	reports := fc.reconcile(context.Background(), s.Name)
	if len(reports) != 1 || reports[0].Converged {
		t.Errorf("reconcile after fan-out = %+v, want one degraded report", reports)
	}
}

// TestZeroValueFleetConfigurator: constructing the struct directly (not
// via NewFleetConfigurator) must not silently report success without
// pushing — the zero retry policy takes defaults and the maps self-init.
func TestZeroValueFleetConfigurator(t *testing.T) {
	s := &core.Strategy{
		Name: "zero",
		Services: []core.Service{{
			Name: "shop",
			// Unroutable replica: the push must actually be attempted and
			// fail, not be skipped by a zero-attempt retry loop.
			ProxyURLs: []string{"127.0.0.1:1"},
			Versions:  []core.Version{{Name: "stable", Endpoint: "127.0.0.1:9001"}},
		}},
	}
	rc := core.RoutingConfig{Service: "shop", Weights: map[string]float64{"stable": 1}}
	fc := &FleetConfigurator{}
	if err := fc.Configure(context.Background(), s, &core.State{}, rc, 1); err == nil {
		t.Fatal("zero-value configurator reported success without any reachable replica")
	}
	if fc.reconcileInterval() <= 0 {
		t.Errorf("reconcileInterval = %v, want positive", fc.reconcileInterval())
	}
}

// TestFleetReconcileRepairsRebootedReplica: a replica that crashes is
// reported degraded; once it reboots (empty config), the next anti-entropy
// pass re-pushes the current generation and reports convergence.
func TestFleetReconcileRepairsRebootedReplica(t *testing.T) {
	s, rc, replicas, dial := fleetFixture()
	fc := NewFleetConfigurator(FleetRetry(fastRetry()), dial)
	ctx := context.Background()
	if err := fc.Configure(ctx, s, &core.State{}, rc, 5); err != nil {
		t.Fatal(err)
	}
	// The run loop calls settled after publishing routing_applied; mirror
	// it so the reconciler reports this fleet.
	fc.settled(s.Name, "shop")

	reports := fc.reconcile(ctx, s.Name)
	if len(reports) != 1 || !reports[0].Converged || reports[0].Acked != 3 {
		t.Fatalf("initial reconcile = %+v, want converged 3/3", reports)
	}

	replicas["r2"].crash()
	reports = fc.reconcile(ctx, s.Name)
	if len(reports) != 1 || reports[0].Converged || reports[0].Acked != 2 {
		t.Fatalf("crashed reconcile = %+v, want degraded 2/3", reports)
	}
	if len(reports[0].Lagging) != 1 || reports[0].Lagging[0] != "r2" {
		t.Fatalf("lagging = %v, want [r2]", reports[0].Lagging)
	}

	replicas["r2"].reboot()
	reports = fc.reconcile(ctx, s.Name)
	if len(reports) != 1 || !reports[0].Converged {
		t.Fatalf("post-reboot reconcile = %+v, want converged", reports)
	}
	if replicas["r2"].generation() != 5 {
		t.Errorf("rebooted replica generation = %d, want 5 (anti-entropy re-push)",
			replicas["r2"].generation())
	}

	fc.forget(s.Name)
	if got := fc.reconcile(ctx, s.Name); len(got) != 0 {
		t.Errorf("reconcile after forget = %+v, want none", got)
	}
}

// countReplicaGauges counts exported engine_proxy_replica_generation series.
func countReplicaGauges(eng *Engine) int {
	n := 0
	for _, p := range eng.Registry().Gather() {
		if p.Name == "engine_proxy_replica_generation" {
			n++
		}
	}
	return n
}

// TestFleetForgetRetiresReplicaGauges: finished strategies must not leak
// per-replica generation series for the engine's lifetime.
func TestFleetForgetRetiresReplicaGauges(t *testing.T) {
	s, rc, _, dial := fleetFixture()
	fc := NewFleetConfigurator(FleetRetry(fastRetry()), dial)
	eng := New(WithConfigurator(fc)) // binds the registry
	defer eng.Shutdown()

	if err := fc.Configure(context.Background(), s, &core.State{}, rc, 2); err != nil {
		t.Fatal(err)
	}
	if n := countReplicaGauges(eng); n != 3 {
		t.Fatalf("replica gauges after configure = %d, want 3", n)
	}
	fc.forget(s.Name)
	if n := countReplicaGauges(eng); n != 0 {
		t.Errorf("replica gauges after forget = %d, want 0", n)
	}
	// A straggler ack arriving after forget must not resurrect a series.
	fc.recordGeneration(fleetKey{s.Name, "shop"}, "r1", 2)
	if n := countReplicaGauges(eng); n != 0 {
		t.Errorf("replica gauges after post-forget ack = %d, want 0", n)
	}
}

// TestFleetForgetRetiresRepushCounters: anti-entropy re-pushes to lagging
// replicas surface on a per-replica engine_proxy_repush_total counter, and
// forget retires those series alongside the generation gauges.
func TestFleetForgetRetiresRepushCounters(t *testing.T) {
	s, rc, replicas, dial := fleetFixture()
	fc := NewFleetConfigurator(FleetRetry(fastRetry()), dial)
	eng := New(WithConfigurator(fc)) // binds the registry
	defer eng.Shutdown()

	ctx := context.Background()
	if err := fc.Configure(ctx, s, &core.State{}, rc, 5); err != nil {
		t.Fatal(err)
	}
	fc.settled(s.Name, "shop")
	replicas["r2"].crash()
	fc.reconcile(ctx, s.Name)
	replicas["r2"].reboot()
	fc.reconcile(ctx, s.Name) // repairs r2: one re-push

	countRepush := func() (series int, total float64) {
		for _, p := range eng.Registry().Gather() {
			if p.Name == "engine_proxy_repush_total" {
				series++
				total += p.Value
			}
		}
		return
	}
	series, total := countRepush()
	if series != 1 || total < 1 {
		t.Fatalf("repush counters after repair = %d series (sum %v), want 1 series ≥ 1", series, total)
	}
	fc.forget(s.Name)
	if series, _ := countRepush(); series != 0 {
		t.Errorf("repush counters after forget = %d, want 0", series)
	}
}

// TestFleetConvergedEventAfterRecovery: a degradation journaled before an
// engine restart is resolved on the event stream — the recovered run's
// reconciler seeds its transition detector from the journal-reduced fleet
// status, so the heal observed on its first pass publishes
// routing_converged instead of staying silent forever.
func TestFleetConvergedEventAfterRecovery(t *testing.T) {
	replicas := map[string]*fakeReplica{"r1": {}, "r2": {}, "r3": {}}
	dial := fleetDial(func(url string) replicaClient { return replicas[url] })
	const src = `
name: fleet-recover
deployment:
  services:
    - service: shop
      proxies: [r1, r2, r3]
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
strategy:
  phases:
    - phase: hold
      duration: 300s
      routes:
        - route:
            service: shop
            weights: {stable: 100}
      on:
        success: done
    - phase: done
`
	strategy, err := dsl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fleetOpts := func() []FleetOption {
		return []FleetOption{FleetRetry(fastRetry()), FleetReconcileInterval(15 * time.Millisecond), dial}
	}

	eng1 := New(WithConfigurator(NewFleetConfigurator(fleetOpts()...)),
		WithJournalSet(openTestJournal(t, dir)))
	if _, err := eng1.EnactSource(strategy, src); err != nil {
		t.Fatal(err)
	}
	eventually(t, "initial fleet push", func() bool {
		return replicas["r1"].generation() > 0 && replicas["r2"].generation() > 0
	})
	replicas["r2"].crash()
	eventually(t, "degradation journaled", func() bool {
		for _, ev := range eng1.RunEvents("fleet-recover", 0) {
			if ev.Type == EventRoutingDegraded {
				return true
			}
		}
		return false
	})
	eng1.Suspend()

	// The replica heals while the engine is down.
	replicas["r2"].reboot()

	eng2 := New(WithConfigurator(NewFleetConfigurator(fleetOpts()...)),
		WithJournalSet(openTestJournal(t, dir)))
	defer eng2.Shutdown()
	events, cancel := eng2.Subscribe(256)
	defer cancel()
	report, err := eng2.Recover(dsl.Compile)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Resumed) != 1 {
		t.Fatalf("resumed = %d, want 1", len(report.Resumed))
	}
	conv := awaitEvent(t, events, "routing_converged after recovery", func(ev Event) bool {
		return ev.Type == EventRoutingConverged && ev.Service == "shop"
	})
	if conv.Acked != 3 {
		t.Errorf("converged acked = %d, want 3", conv.Acked)
	}
	if g := replicas["r2"].generation(); g <= 0 {
		t.Errorf("healed replica generation = %d, want re-pushed", g)
	}
}

// TestRecoveryReappliesRoutingFromEarlierState: routing persists across
// states that declare none, so a run recovered into a routeless soak
// state must still re-apply the routing in force (from the earlier
// state) — otherwise replicas that restarted during the downtime stay
// unconfigured and the reconciler has nothing to repair against.
func TestRecoveryReappliesRoutingFromEarlierState(t *testing.T) {
	replicas := map[string]*fakeReplica{"r1": {}, "r2": {}, "r3": {}}
	dial := fleetDial(func(url string) replicaClient { return replicas[url] })
	const src = `
name: fleet-soak
deployment:
  services:
    - service: shop
      proxies: [r1, r2, r3]
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
strategy:
  phases:
    - phase: rollout
      duration: 30ms
      routes:
        - route:
            service: shop
            weights: {stable: 100}
      on:
        success: soak
    - phase: soak
      duration: 300s
      on:
        success: done
    - phase: done
`
	strategy, err := dsl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fleetOpts := func() []FleetOption {
		return []FleetOption{FleetRetry(fastRetry()), FleetReconcileInterval(15 * time.Millisecond), dial}
	}

	eng1 := New(WithConfigurator(NewFleetConfigurator(fleetOpts()...)),
		WithJournalSet(openTestJournal(t, dir)))
	run1, err := eng1.EnactSource(strategy, src)
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, "run reaches the routeless soak state", func() bool {
		return run1.Status().Current == "soak"
	})
	preCrash := replicas["r1"].generation()
	if preCrash <= 0 {
		t.Fatalf("rollout never configured the fleet (gen %d)", preCrash)
	}
	eng1.Suspend()

	// Every replica restarts configless while the engine is down.
	for _, f := range replicas {
		f.reboot()
	}

	eng2 := New(WithConfigurator(NewFleetConfigurator(fleetOpts()...)),
		WithJournalSet(openTestJournal(t, dir)))
	defer eng2.Shutdown()
	report, err := eng2.Recover(dsl.Compile)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Resumed) != 1 {
		t.Fatalf("resumed = %d, want 1", len(report.Resumed))
	}
	eventually(t, "routing re-applied to rebooted replicas", func() bool {
		for _, f := range replicas {
			if f.generation() <= preCrash {
				return false
			}
		}
		return true
	})
	eventually(t, "reconciler reports the restored fleet", func() bool {
		fl := report.Resumed[0].Status().Fleet
		return len(fl) == 1 && fl[0].Converged && fl[0].Acked == 3
	})
	if cur := report.Resumed[0].Status().Current; cur != "soak" {
		t.Errorf("recovered into %q, want soak", cur)
	}
}

// flakyAdmin is a real-HTTP proxy admin stub whose first failPuts config
// pushes fail with 503 — the "one flaky config push" from the issue title.
type flakyAdmin struct {
	mu       sync.Mutex
	failPuts int
	puts     int
	cfg      proxy.Config
}

func (fa *flakyAdmin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	switch {
	case r.Method == http.MethodPut && r.URL.Path == "/_bifrost/config":
		fa.puts++
		if fa.puts <= fa.failPuts {
			httpx.WriteError(w, http.StatusServiceUnavailable, "admin API hiccup")
			return
		}
		var cfg proxy.Config
		if err := httpx.ReadJSON(r, &cfg); err != nil {
			httpx.WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		fa.cfg = cfg
		httpx.WriteJSON(w, http.StatusOK, map[string]any{"generation": cfg.Generation})
	case r.URL.Path == "/_bifrost/config":
		httpx.WriteJSON(w, http.StatusOK, fa.cfg)
	case r.URL.Path == "/_bifrost/healthy":
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	default:
		http.NotFound(w, r)
	}
}

// TestTransientPushFailureDoesNotFailRun is the regression for the
// headline bug: a single transient admin-API failure at state entry used
// to abort the whole run; with bounded retries it must complete.
func TestTransientPushFailureDoesNotFailRun(t *testing.T) {
	fa := &flakyAdmin{failPuts: 1}
	srv := httptest.NewServer(fa)
	defer srv.Close()

	src := fmt.Sprintf(`
name: flaky-push
deployment:
  services:
    - service: shop
      proxy: %s
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
        - name: canary
          endpoint: 127.0.0.1:9002
strategy:
  phases:
    - phase: canary
      duration: 50ms
      routes:
        - route:
            service: shop
            weights: {stable: 9, canary: 1}
      on:
        success: done
    - phase: done
      routes:
        - route:
            service: shop
            weights: {canary: 100}
`, srv.URL)
	strategy, err := dsl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	eng := New(WithConfigurator(NewFleetConfigurator(FleetRetry(fastRetry()))))
	defer eng.Shutdown()
	run, err := eng.Enact(strategy)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := run.Wait(ctx); err != nil {
		t.Fatalf("run did not finish: %v", err)
	}
	st := run.Status()
	if st.State != RunCompleted {
		t.Fatalf("run state = %s (%s), want completed despite the flaky push", st.State, st.Error)
	}
	fa.mu.Lock()
	puts := fa.puts
	fa.mu.Unlock()
	if puts < 3 { // 1 failed + 1 retried + 1 for the done state
		t.Errorf("puts = %d, want the failed push retried", puts)
	}
}

// TestHTTPConfiguratorRetriesTransient covers the single-proxy path of
// satellite #1: HTTPConfigurator bounds and retries its pushes too.
func TestHTTPConfiguratorRetriesTransient(t *testing.T) {
	fa := &flakyAdmin{failPuts: 2}
	srv := httptest.NewServer(fa)
	defer srv.Close()

	s := &core.Strategy{
		Name: "single",
		Services: []core.Service{{
			Name:     "shop",
			ProxyURL: srv.URL,
			Versions: []core.Version{{Name: "stable", Endpoint: "127.0.0.1:9001"}},
		}},
	}
	rc := core.RoutingConfig{Service: "shop", Weights: map[string]float64{"stable": 1}}
	hc := HTTPConfigurator{Retry: fastRetry()}
	if err := hc.Configure(context.Background(), s, &core.State{}, rc, 2); err != nil {
		t.Fatalf("configure: %v", err)
	}
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.cfg.Generation != 2 || fa.puts != 3 {
		t.Errorf("generation = %d after %d puts, want 2 after 3", fa.cfg.Generation, fa.puts)
	}
}

// racingFleetManager is a scripted configurator/fleet manager that
// reproduces the PR 5 trade-off window deterministically: its first
// reconcile pass hands the run loop a degraded report for the generation it
// was asked to configure, and supersedes that generation *in the same
// breath* — i.e. the transition lands exactly between the pass's stale
// filter and the loop's publish. Later passes report the new generation.
type racingFleetManager struct {
	mu       sync.Mutex
	gen      int64 // current settled desired generation
	settling bool
	staleGen int64 // the generation the poisoned pass reports
	poisoned bool  // first post-settle pass already fired
	passes   int
}

func (m *racingFleetManager) Configure(ctx context.Context, s *core.Strategy,
	state *core.State, rc core.RoutingConfig, generation int64) error {
	m.mu.Lock()
	m.gen, m.settling = generation, true
	m.staleGen = generation
	m.mu.Unlock()
	return nil
}

func (m *racingFleetManager) tracks(*core.Strategy) bool { return true }

func (m *racingFleetManager) reconcile(ctx context.Context, strategy string) []FleetStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.settling {
		return nil
	}
	m.passes++
	if !m.poisoned {
		// The poisoned pass: report the current generation as degraded,
		// then supersede it before returning — from the run loop's point
		// of view the transition happened in the filter-to-publish window.
		m.poisoned = true
		st := FleetStatus{
			Service: "shop", Generation: m.staleGen,
			Replicas: 2, Acked: 1, Lagging: []string{"r2"},
		}
		m.gen = m.staleGen + 1 // supersede; already settled (applied elsewhere)
		return []FleetStatus{st}
	}
	return []FleetStatus{{
		Service: "shop", Generation: m.gen,
		Replicas: 2, Acked: 1, Lagging: []string{"r2"},
	}}
}

func (m *racingFleetManager) reconcileInterval() time.Duration { return 5 * time.Millisecond }
func (m *racingFleetManager) passBudget() time.Duration        { return time.Second }

func (m *racingFleetManager) settled(strategy, service string) {
	m.mu.Lock()
	m.settling = false
	m.mu.Unlock()
}

func (m *racingFleetManager) forget(strategy string) {}

// withCurrent mirrors FleetConfigurator.withCurrent's contract over the
// scripted state: fn runs only while generation is still the settled
// current one, under the same lock reconcile mutates it.
func (m *racingFleetManager) withCurrent(strategy, service string, generation int64, fn func()) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.settling || m.gen != generation {
		return false
	}
	fn()
	return true
}

// TestReconcileLoopDropsStaleReportFullPath drives the PR 5 stale-report
// race through the real run loop: the reconciler's pass returns a report
// for a generation that is superseded before the loop can publish it. The
// loop must consult the manager's publish gate and drop the report — the
// journal never carries a routing_degraded for the dead generation — while
// the next pass's report for the live generation still publishes.
func TestReconcileLoopDropsStaleReportFullPath(t *testing.T) {
	fm := &racingFleetManager{}
	eng := New(WithConfigurator(fm))
	defer eng.Shutdown()

	strategy, err := dsl.Compile(holdStrategy)
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := eng.Subscribe(256)
	defer cancel()
	if _, err := eng.EnactSource(strategy, holdStrategy); err != nil {
		t.Fatal(err)
	}

	// The live generation's degradation reaches the stream... (staleGen is
	// only read once an event proves the poisoned pass already ran)
	ev := awaitEvent(t, events, "routing_degraded for the live generation", func(ev Event) bool {
		return ev.Type == EventRoutingDegraded
	})
	fm.mu.Lock()
	stale := fm.staleGen
	fm.mu.Unlock()
	if ev.Generation != stale+1 {
		t.Fatalf("first published degradation is generation %d, want %d (the superseding one)",
			ev.Generation, stale+1)
	}
	// ...and the superseded generation's never does, no matter how long the
	// journal is replayed: the gate dropped it inside the window.
	for _, got := range eng.RunEvents(strategy.Name, 0) {
		if (got.Type == EventRoutingDegraded || got.Type == EventRoutingConverged) &&
			got.Generation == stale {
			t.Fatalf("stale generation-%d report slipped through the publish gate: %+v",
				stale, got)
		}
	}
	fm.mu.Lock()
	passes := fm.passes
	fm.mu.Unlock()
	if passes < 2 {
		t.Fatalf("reconciler made %d passes, want at least the poisoned one and a live one", passes)
	}
}
