package engine

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
	"bifrost/internal/proxy"
)

// This file implements fleet delivery: fanning a state's routing config
// out to every proxy replica of a service, with bounded retries, quorum
// acknowledgement, and background anti-entropy reconciliation, so one
// flaky admin call — or one rebooting replica — no longer kills a
// multi-day run (the paper's strategies run for days; §4.1's "engine
// updates the affected proxies" must tolerate exactly this).

// RetryPolicy bounds the delivery of one routing config to one proxy
// replica: every attempt runs under PushTimeout, and transient failures
// (network errors, HTTP 5xx) are retried with exponential backoff up to
// MaxAttempts. Permanent rejections — the proxy's typed invalid_config
// and stale_generation problems, or any other 4xx — fail immediately:
// retrying them can never succeed.
type RetryPolicy struct {
	// PushTimeout is the per-attempt deadline; a hung proxy admin API
	// costs at most this per attempt instead of wedging the run loop.
	PushTimeout time.Duration
	// MaxAttempts caps total attempts per push (including the first).
	MaxAttempts int
	// BaseBackoff is the wait before the second attempt; it doubles per
	// attempt, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy is the policy used when fields are left zero: 5s per
// attempt, 4 attempts, backoff 100ms → 2s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		PushTimeout: 5 * time.Second,
		MaxAttempts: 4,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (rp RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if rp.PushTimeout <= 0 {
		rp.PushTimeout = def.PushTimeout
	}
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = def.MaxAttempts
	}
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = def.BaseBackoff
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = def.MaxBackoff
	}
	return rp
}

// replicaClient is the slice of a proxy's admin API the fleet subsystem
// uses; *proxy.Client implements it, tests inject fakes via dial.
type replicaClient interface {
	SetConfig(ctx context.Context, cfg proxy.Config) error
	GetConfig(ctx context.Context) (proxy.Config, error)
	Healthy(ctx context.Context) error
}

// dialProxy is the production dialer: admin clients over HTTP.
func dialProxy(baseURL string) replicaClient {
	return &proxy.Client{BaseURL: endpointURL(baseURL)}
}

func clockOrReal(clk clock.Clock) clock.Clock {
	if clk == nil {
		return clock.Real{}
	}
	return clk
}

// pushWithRetry delivers one config to one replica under the policy:
// bounded attempts, exponential backoff between them, immediate failure on
// permanent rejections and on context cancellation.
func pushWithRetry(ctx context.Context, clk clock.Clock, c replicaClient,
	cfg proxy.Config, rp RetryPolicy) error {

	backoff := rp.BaseBackoff
	var last error
	for attempt := 0; attempt < rp.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-clk.After(backoff):
			}
			backoff *= 2
			if backoff > rp.MaxBackoff {
				backoff = rp.MaxBackoff
			}
		}
		pctx, cancel := context.WithTimeout(ctx, rp.PushTimeout)
		err := c.SetConfig(pctx, cfg)
		cancel()
		if err == nil {
			return nil
		}
		last = err
		if permanentPushError(err) || ctx.Err() != nil {
			return last
		}
	}
	return last
}

// permanentPushError reports whether a push rejection can never succeed on
// retry: an HTTP 4xx (typed invalid_config/stale_generation problems, or
// any malformed-request rejection) — except 408 and 429, which are
// canonically transient (a rate-limiting ingress in front of a replica
// must back off, not fail the push). Network errors and 5xx are transient.
func permanentPushError(err error) bool {
	status := 0
	var p *httpx.Problem
	var e *httpx.Error
	switch {
	case errors.As(err, &p):
		status = p.Status
	case errors.As(err, &e):
		status = e.StatusCode
	}
	switch status {
	case http.StatusRequestTimeout, http.StatusTooManyRequests:
		return false
	}
	return status >= 400 && status < 500
}

// deliver pushes cfg to every endpoint concurrently, each with its own
// retry schedule, and returns nil as soon as need replicas acked — a hung
// or dead minority must not delay the release automaton when a quorum
// below the fleet size is configured. Stragglers keep retrying in the
// background (bounded by the policy and ctx), reporting acks via onAck;
// replicas that never make it are repaired by the reconciler. A failure
// verdict waits for every replica's result so the error names each failed
// replica, with the per-replica errors wrapped (errors.As still reaches
// the proxies' typed problem documents).
func deliver(ctx context.Context, clk clock.Clock, dial func(string) replicaClient,
	endpoints []string, cfg proxy.Config, rp RetryPolicy, need int,
	onAck func(endpoint string)) error {

	type result struct {
		endpoint string
		err      error
	}
	results := make(chan result, len(endpoints))
	for _, ep := range endpoints {
		go func(ep string) {
			err := pushWithRetry(ctx, clk, dial(ep), cfg, rp)
			if err == nil && onAck != nil {
				onAck(ep)
			}
			results <- result{ep, err}
		}(ep)
	}
	acked := 0
	var fails []error
	for n := 0; n < len(endpoints); n++ {
		res := <-results
		if res.err == nil {
			acked++
			if acked >= need {
				return nil
			}
			continue
		}
		fails = append(fails, fmt.Errorf("%s: %w", res.endpoint, res.err))
	}
	return fmt.Errorf("engine: service %q: %d/%d replicas acked generation %d (quorum %d): %w",
		cfg.Service, acked, len(endpoints), cfg.Generation, need, errors.Join(fails...))
}

// FleetStatus is the convergence snapshot of one service's proxy fleet at
// the run's current routing generation. It appears in run status
// (Status.Fleet), is reduced from routing_converged / routing_degraded
// events by the journal mirror, and is printed by `bifrost status`.
type FleetStatus struct {
	Service string `json:"service"`
	// Generation is the fleet's desired routing generation.
	Generation int64 `json:"generation"`
	// Replicas is the fleet size; Acked counts replicas observed at (or
	// beyond) Generation.
	Replicas int `json:"replicas"`
	Acked    int `json:"acked"`
	// Lagging lists the replicas behind Generation or unreachable.
	Lagging []string `json:"lagging,omitempty"`
	// Converged is Acked == Replicas. A degraded fleet still serves
	// traffic — on the routing the lagging replicas last acked.
	Converged bool `json:"converged"`
}

// fleetManager is implemented by configurators that track per-replica
// delivery state; the run loop drives a background reconciler against it
// (run.go's reconcileLoop), acknowledges each routing_applied via
// settled, and forgets the strategy's fleets on exit.
type fleetManager interface {
	reconcile(ctx context.Context, strategy string) []FleetStatus
	reconcileInterval() time.Duration
	passBudget() time.Duration
	settled(strategy, service string)
	forget(strategy string)
	// withCurrent runs fn only while generation is still the settled
	// desired generation for the service, holding the manager's state
	// lock across fn so no state transition can supersede the generation
	// mid-publish. Reports whether fn ran.
	withCurrent(strategy, service string, generation int64, fn func()) bool
}

// FleetOption configures a FleetConfigurator.
type FleetOption func(*FleetConfigurator)

// FleetQuorum sets how many replica acks make a state entry successful
// (0 or anything above the fleet size means: all replicas). Replicas that
// missed the push are reconverged by the background reconciler.
func FleetQuorum(n int) FleetOption {
	return func(fc *FleetConfigurator) { fc.quorum = n }
}

// FleetRetry sets the per-replica push retry policy.
func FleetRetry(rp RetryPolicy) FleetOption {
	return func(fc *FleetConfigurator) { fc.retry = rp.withDefaults() }
}

// FleetReconcileInterval sets the anti-entropy cadence (default 10s).
func FleetReconcileInterval(d time.Duration) FleetOption {
	return func(fc *FleetConfigurator) {
		if d > 0 {
			fc.every = d
		}
	}
}

// fleetDial overrides how admin clients are built (tests).
func fleetDial(dial func(string) replicaClient) FleetOption {
	return func(fc *FleetConfigurator) { fc.dial = dial }
}

// FleetConfigurator delivers routing configs to every proxy replica of a
// service (Service.ProxyURLs, or the single ProxyURL): concurrent fan-out,
// per-replica retry with exponential backoff under a push timeout, and
// state entry succeeding once a configurable quorum acks. It also tracks
// the desired config per (strategy, service), which the per-run
// reconciler polls against the live fleet — re-pushing the current
// generation to lagging or restarted replicas (anti-entropy) and
// reporting convergence, so a replica that reboots mid-phase reconverges
// without operator action.
type FleetConfigurator struct {
	quorum int
	retry  RetryPolicy
	every  time.Duration
	dial   func(string) replicaClient

	// clk and registry are bound to the owning engine by New (engine
	// clock drives backoff/timeout so tests stay deterministic; the
	// registry carries the per-replica generation gauges).
	clk      clock.Clock
	registry *metrics.Registry

	mu     sync.Mutex
	fleets map[fleetKey]*fleetState
	// recorded tracks, per fleet, the newest generation each replica's
	// gauge reported — both so forget can delete the series instead of
	// leaking one per finished strategy, and so a delayed straggler ack
	// for an old generation cannot regress the gauge below what the
	// replica actually runs.
	recorded map[fleetKey]map[string]int64
}

type fleetKey struct{ strategy, service string }

// fleetState is the desired state of one service's fleet: the last wire
// config Configure rendered and where it must be live.
type fleetState struct {
	cfg      proxy.Config
	replicas []string
	// settling is true while the state entry's own fan-out is still
	// running (before its quorum verdict). The reconciler skips settling
	// fleets: a replica mid-retry of its first delivery is not degraded,
	// and a degraded event must never be journaled ahead of the
	// generation's routing_applied.
	settling bool
}

var (
	_ Configurator = (*FleetConfigurator)(nil)
	_ fleetManager = (*FleetConfigurator)(nil)
)

// NewFleetConfigurator creates a fleet configurator; by default it pushes
// over HTTP, requires every replica to ack, retries per
// DefaultRetryPolicy, and reconciles every 10 seconds.
func NewFleetConfigurator(opts ...FleetOption) *FleetConfigurator {
	fc := &FleetConfigurator{
		retry:    DefaultRetryPolicy(),
		every:    10 * time.Second,
		dial:     dialProxy,
		fleets:   make(map[fleetKey]*fleetState, 4),
		recorded: make(map[fleetKey]map[string]int64, 4),
	}
	for _, o := range opts {
		o(fc)
	}
	return fc
}

// bindEngine attaches the owning engine's clock and metrics registry;
// called by engine.New.
func (fc *FleetConfigurator) bindEngine(e *Engine) {
	fc.clk = e.clk
	fc.registry = e.registry
}

// quorumFor resolves the configured quorum against a fleet size.
func (fc *FleetConfigurator) quorumFor(replicas int) int {
	if fc.quorum <= 0 || fc.quorum > replicas {
		return replicas
	}
	return fc.quorum
}

// ensureInitLocked makes a zero-value FleetConfigurator usable: callers
// constructing the struct directly (instead of NewFleetConfigurator) get
// the same defaults rather than nil maps and a no-op retry policy.
// fc.mu must be held.
func (fc *FleetConfigurator) ensureInitLocked() {
	if fc.fleets == nil {
		fc.fleets = make(map[fleetKey]*fleetState, 4)
	}
	if fc.recorded == nil {
		fc.recorded = make(map[fleetKey]map[string]int64, 4)
	}
	if fc.dial == nil {
		fc.dial = dialProxy
	}
}

// Configure implements Configurator: render the routing config once, fan
// it out to every replica concurrently, and succeed once the quorum acks.
// The desired state is recorded first, so even a partially failed push is
// repaired by the reconciler rather than retried by hand.
func (fc *FleetConfigurator) Configure(ctx context.Context, s *core.Strategy,
	state *core.State, rc core.RoutingConfig, generation int64) error {

	svc, ok := s.FindService(rc.Service)
	if !ok {
		return fmt.Errorf("engine: routing for unknown service %q", rc.Service)
	}
	endpoints := svc.ProxyEndpoints()
	if len(endpoints) == 0 {
		return fmt.Errorf("engine: service %q has no proxy URL in deployment", rc.Service)
	}
	cfg, err := BuildProxyConfig(s, rc, generation)
	if err != nil {
		return err
	}

	key := fleetKey{s.Name, rc.Service}
	fs := &fleetState{cfg: cfg, replicas: append([]string(nil), endpoints...), settling: true}
	fc.mu.Lock()
	fc.ensureInitLocked()
	fc.fleets[key] = fs
	dial := fc.dial
	fc.mu.Unlock()

	err = deliver(ctx, clockOrReal(fc.clk), dial, endpoints, cfg, fc.retry.withDefaults(),
		fc.quorumFor(len(endpoints)),
		func(ep string) { fc.recordGeneration(key, ep, generation) })
	if err != nil {
		// The verdict is in and the run is failing this state entry;
		// nothing orders further events, so stop suppressing reports.
		fc.mu.Lock()
		if cur := fc.fleets[key]; cur == fs {
			cur.settling = false
		}
		fc.mu.Unlock()
		return err
	}
	// On success, settling stays set until the caller has published this
	// generation's routing_applied and calls settled() — otherwise a fast
	// reconcile pass could journal routing_degraded for generation N
	// ahead of routing_applied generation N.
	return nil
}

// recordGeneration publishes one replica's acked/observed generation as an
// engine gauge, so dashboards can see each replica converge. Acks landing
// after the fleet was forgotten (a straggler push outliving its run) are
// dropped rather than resurrecting a retired series.
func (fc *FleetConfigurator) recordGeneration(key fleetKey, replica string, gen int64) {
	if fc.registry == nil {
		return
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if _, live := fc.fleets[key]; !live {
		return
	}
	set := fc.recorded[key]
	if set == nil {
		set = make(map[string]int64, 4)
		fc.recorded[key] = set
	}
	if gen < set[replica] {
		// A delayed straggler ack for an older generation: the replica
		// already reported newer, keep the gauge monotonic.
		return
	}
	set[replica] = gen
	// The gauge write stays under fc.mu: a concurrent forget either runs
	// entirely before (the liveness check above skips) or entirely after
	// (the recorded entry just added makes it delete this series) — an
	// unlocked write could land between forget's collection and its
	// DeleteGauge, resurrecting a retired series forever.
	fc.registry.Gauge("engine_proxy_replica_generation", metrics.Labels{
		"strategy": key.strategy, "service": key.service, "replica": replica,
	}).Set(float64(gen))
}

// recordRepair counts one successful anti-entropy re-push to a lagging
// replica. Same locking discipline as recordGeneration: the write stays
// under fc.mu so a concurrent forget cannot leave a resurrected series.
func (fc *FleetConfigurator) recordRepair(key fleetKey, replica string) {
	if fc.registry == nil {
		return
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if _, live := fc.fleets[key]; !live {
		return
	}
	// Register the replica in recorded before writing, so forget retires
	// this counter even if no generation ack ever lands for the replica.
	set := fc.recorded[key]
	if set == nil {
		set = make(map[string]int64, 4)
		fc.recorded[key] = set
	}
	if _, ok := set[replica]; !ok {
		set[replica] = 0
	}
	fc.registry.Counter("engine_proxy_repush_total", metrics.Labels{
		"strategy": key.strategy, "service": key.service, "replica": replica,
	}).Inc()
}

// reconcileInterval implements fleetManager.
func (fc *FleetConfigurator) reconcileInterval() time.Duration {
	if fc.every <= 0 {
		return 10 * time.Second // zero-value construction; see ensureInitLocked
	}
	return fc.every
}

// passBudget implements fleetManager: the worst-case duration of one
// reconcile pass. Services are polled in parallel and each replica costs
// at most a config poll, a liveness poll, and a re-push — three calls
// bounded by the push timeout — plus slack for scheduling.
func (fc *FleetConfigurator) passBudget() time.Duration {
	return 3*fc.retry.withDefaults().PushTimeout + time.Second
}

// settled implements fleetManager: the caller has published this fleet's
// routing_applied, so the reconciler may report it from here on.
func (fc *FleetConfigurator) settled(strategy, service string) {
	fc.mu.Lock()
	if fs := fc.fleets[fleetKey{strategy, service}]; fs != nil {
		fs.settling = false
	}
	fc.mu.Unlock()
}

// withCurrent implements fleetManager: it re-checks, under fc.mu, that
// generation is still the service's settled desired generation and runs fn
// while holding the lock, so a state transition cannot supersede the
// generation between the reconcile pass's filter and the publish. fc.mu →
// publish-lock is the only ordering between these locks (nothing in the
// publish pipeline calls back into the fleet manager), so holding fc.mu
// across fn is deadlock-free.
func (fc *FleetConfigurator) withCurrent(strategy, service string, generation int64, fn func()) bool {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fs := fc.fleets[fleetKey{strategy, service}]
	if fs == nil || fs.settling || fs.cfg.Generation != generation {
		return false
	}
	fn()
	return true
}

// forget implements fleetManager: drops a finished strategy's fleets and
// retires their per-replica generation gauges and re-push counters.
func (fc *FleetConfigurator) forget(strategy string) {
	fc.mu.Lock()
	for key := range fc.fleets {
		if key.strategy == strategy {
			delete(fc.fleets, key)
		}
	}
	var retired []metrics.Labels
	for key, set := range fc.recorded {
		if key.strategy != strategy {
			continue
		}
		for replica := range set {
			retired = append(retired, metrics.Labels{
				"strategy": key.strategy, "service": key.service, "replica": replica,
			})
		}
		delete(fc.recorded, key)
	}
	fc.mu.Unlock()
	if fc.registry != nil {
		for _, labels := range retired {
			fc.registry.DeleteGauge("engine_proxy_replica_generation", labels)
			fc.registry.DeleteCounter("engine_proxy_repush_total", labels)
		}
	}
}

// reconcile implements fleetManager: one anti-entropy pass over the
// strategy's fleets. Every replica is polled for its active config
// generation; lagging or restarted replicas get the current generation
// re-pushed (one bounded attempt — the next pass retries). Returns one
// FleetStatus per service, sorted by service name.
func (fc *FleetConfigurator) reconcile(ctx context.Context, strategy string) []FleetStatus {
	type target struct {
		key      fleetKey
		cfg      proxy.Config
		replicas []string
	}
	fc.mu.Lock()
	targets := make([]target, 0, len(fc.fleets))
	for key, fs := range fc.fleets {
		if key.strategy != strategy || fs.settling {
			continue
		}
		targets = append(targets, target{key, fs.cfg, append([]string(nil), fs.replicas...)})
	}
	fc.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].key.service < targets[j].key.service })

	// Services are polled concurrently like the replicas within each: a
	// pass must be bounded by the slowest single service, not their sum —
	// a hung replica costs two admin timeouts, and a sequential sweep of
	// several such services would blow past the caller's pass budget.
	out := make([]FleetStatus, len(targets))
	var services sync.WaitGroup
	for ti, tg := range targets {
		services.Add(1)
		go func(ti int, tg target) {
			defer services.Done()
			st := FleetStatus{
				Service:    tg.key.service,
				Generation: tg.cfg.Generation,
				Replicas:   len(tg.replicas),
			}
			gens := make([]int64, len(tg.replicas))
			var wg sync.WaitGroup
			for i, ep := range tg.replicas {
				wg.Add(1)
				go func(i int, ep string) {
					defer wg.Done()
					gens[i] = fc.observeAndRepair(ctx, tg.key, ep, tg.cfg)
				}(i, ep)
			}
			wg.Wait()
			for i, gen := range gens {
				if gen >= tg.cfg.Generation {
					st.Acked++
				} else {
					st.Lagging = append(st.Lagging, tg.replicas[i])
				}
			}
			st.Converged = st.Acked == st.Replicas
			out[ti] = st
		}(ti, tg)
	}
	services.Wait()
	// A pass can straddle a state transition: the run may have pushed a
	// newer generation while we were polling the captured one. Reports on
	// a superseded (or re-settling, or forgotten) desired state are
	// dropped — publishing them would degrade the fleet over a
	// generation nobody wants anymore; the next pass reports the current
	// one. A transition completing after this filter is caught by the
	// caller re-checking under withCurrent at publish time, so a stale
	// report can no longer slip through the filter-to-publish window.
	fc.mu.Lock()
	current := out[:0]
	for _, st := range out {
		fs := fc.fleets[fleetKey{strategy, st.Service}]
		if fs != nil && !fs.settling && fs.cfg.Generation == st.Generation {
			current = append(current, st)
		}
	}
	fc.mu.Unlock()
	return current
}

// observeAndRepair polls one replica's active generation and re-pushes the
// desired config when the replica lags (it restarted, or missed a push).
// Returns the replica's generation after any repair; -1 when unreachable.
func (fc *FleetConfigurator) observeAndRepair(ctx context.Context, key fleetKey,
	replica string, want proxy.Config) int64 {

	c := fc.dial(replica)
	timeout := fc.retry.withDefaults().PushTimeout
	pctx, cancel := context.WithTimeout(ctx, timeout)
	cur, err := c.GetConfig(pctx)
	cancel()
	if err != nil {
		hctx, hcancel := context.WithTimeout(ctx, timeout)
		healthy := c.Healthy(hctx) == nil
		hcancel()
		if !healthy {
			return -1 // down; nothing to repair until it returns
		}
		cur = proxy.Config{Generation: -1} // alive but configless: re-push
	}
	if cur.Generation >= want.Generation {
		fc.recordGeneration(key, replica, cur.Generation)
		return cur.Generation
	}
	pctx, cancel = context.WithTimeout(ctx, timeout)
	err = c.SetConfig(pctx, want)
	cancel()
	if err != nil {
		if httpx.ProblemCode(err) == proxy.CodeStaleGeneration {
			// The replica is already ahead of this fleet's desired state:
			// a newer state's push raced this pass. Count it converged —
			// the desired state it outran is obsolete.
			return want.Generation
		}
		return cur.Generation // still lagging; next pass retries
	}
	fc.recordRepair(key, replica)
	fc.recordGeneration(key, replica, want.Generation)
	return want.Generation
}
