// Command bifrost is the Bifrost CLI (paper §4.1): it connects to the
// engine and schedules, inspects, controls, and aborts release strategies —
// remotely or from release scripts.
//
// Usage:
//
//	bifrost -engine http://127.0.0.1:7000 schedule strategy.yaml
//	bifrost schedule -dry-run strategy.yaml   (engine-side validate + analyze)
//	bifrost status [name]              (alias: runs; recovered runs are marked)
//	bifrost events [-n 50]
//	bifrost watch [name]               (live SSE event stream, no polling)
//	bifrost pause name
//	bifrost resume name [gen]
//	bifrost promote name [state]       (manual success gate decision)
//	bifrost rollback name [state]      (manual failure gate decision)
//	bifrost abort name
//	bifrost validate strategy.yaml     (local, no engine needed)
//	bifrost graph strategy.yaml        (DOT to stdout)
//	bifrost estimate strategy.yaml     (expected rollout time)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bifrost/internal/analysis"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bifrost:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bifrost", flag.ContinueOnError)
	engineURL := fs.String("engine", "http://127.0.0.1:7000", "engine API base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: bifrost [-engine URL] <schedule|status|runs|events|watch|pause|resume|promote|rollback|abort|validate|graph|estimate> [args]")
	}
	client := &engine.Client{BaseURL: *engineURL}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	switch cmd := rest[0]; cmd {
	case "schedule":
		sub := flag.NewFlagSet("schedule", flag.ContinueOnError)
		dryRun := sub.Bool("dry-run", false, "validate and analyze on the engine without enacting")
		if err := sub.Parse(rest[1:]); err != nil {
			return err
		}
		if sub.NArg() != 1 {
			return fmt.Errorf("usage: bifrost schedule [-dry-run] <strategy.yaml>")
		}
		src, err := os.ReadFile(sub.Arg(0))
		if err != nil {
			return err
		}
		if *dryRun {
			reports, err := client.DryRunAll(ctx, string(src))
			if err != nil {
				return err
			}
			for _, res := range reports {
				fmt.Printf("strategy %q is valid: rollout %v .. %v\n", res.Strategy,
					res.Analysis.MinDuration, res.Analysis.MaxDuration)
				if len(res.Analysis.Unreachable) > 0 {
					fmt.Printf("warning: unreachable states: %v\n", res.Analysis.Unreachable)
				}
				if len(res.Analysis.Trapped) > 0 {
					fmt.Printf("warning: states that cannot finish: %v\n", res.Analysis.Trapped)
				}
			}
			return nil
		}
		// A plain strategy schedules one run; a matrix template schedules
		// every expansion in one request (all-or-nothing on the engine).
		sts, err := client.ScheduleAll(ctx, string(src))
		if err != nil {
			return err
		}
		for _, st := range sts {
			fmt.Printf("scheduled %s (state %s)\n", st.Strategy, st.State)
		}
		if len(sts) > 1 {
			fmt.Printf("%d runs scheduled from matrix template\n", len(sts))
		}
		return nil

	case "status", "runs":
		if len(rest) == 2 {
			st, err := client.Get(ctx, rest[1])
			if err != nil {
				return err
			}
			printStatus(st)
			return nil
		}
		list, err := client.List(ctx)
		if err != nil {
			return err
		}
		if len(list) == 0 {
			fmt.Println("no strategies")
			return nil
		}
		for _, st := range list {
			printStatus(st)
		}
		return nil

	case "events":
		n := 50
		if len(rest) == 3 && rest[1] == "-n" {
			if v, err := strconv.Atoi(rest[2]); err == nil {
				n = v
			}
		}
		events, err := client.Events(ctx, n)
		if err != nil {
			return err
		}
		for _, ev := range events {
			printEvent(ev)
		}
		return nil

	case "watch":
		name := ""
		if len(rest) == 2 {
			name = rest[1]
		}
		return watch(client, name)

	case "pause":
		if len(rest) != 2 {
			return fmt.Errorf("usage: bifrost pause <name>")
		}
		gen, err := client.Pause(ctx, rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("paused %s (resume with: bifrost resume %s %d)\n", rest[1], rest[1], gen)
		return nil

	case "resume":
		if len(rest) != 2 && len(rest) != 3 {
			return fmt.Errorf("usage: bifrost resume <name> [generation]")
		}
		gen := 0
		if len(rest) == 3 {
			v, err := strconv.Atoi(rest[2])
			if err != nil {
				return fmt.Errorf("bad generation %q: %v", rest[2], err)
			}
			gen = v
		}
		st, err := client.Resume(ctx, rest[1], gen)
		if err != nil {
			return err
		}
		fmt.Printf("resumed %s (state %s, current %s)\n", st.Strategy, st.State, st.Current)
		return nil

	case "promote", "rollback":
		if len(rest) != 2 && len(rest) != 3 {
			return fmt.Errorf("usage: bifrost %s <name> [target-state]", cmd)
		}
		target := ""
		if len(rest) == 3 {
			target = rest[2]
		}
		var st engine.Status
		var err error
		if cmd == "promote" {
			st, err = client.Promote(ctx, rest[1], target)
		} else {
			st, err = client.Rollback(ctx, rest[1], target)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s applied to %s (state %s)\n", cmd, st.Strategy, st.State)
		return nil

	case "abort":
		if len(rest) != 2 {
			return fmt.Errorf("usage: bifrost abort <name>")
		}
		if err := client.Abort(ctx, rest[1]); err != nil {
			return err
		}
		fmt.Printf("aborted %s\n", rest[1])
		return nil

	case "validate", "graph", "estimate":
		if len(rest) != 2 {
			return fmt.Errorf("usage: bifrost %s <strategy.yaml>", cmd)
		}
		src, err := os.ReadFile(rest[1])
		if err != nil {
			return err
		}
		runs, err := dsl.CompileAll(string(src))
		if err != nil {
			return err
		}
		switch cmd {
		case "validate":
			for _, r := range runs {
				report, err := analysis.Analyze(r.Strategy)
				if err != nil {
					return fmt.Errorf("run %q: %w", r.Strategy.Name, err)
				}
				fmt.Printf("strategy %q is valid: %d states, rollout %v .. %v\n",
					r.Strategy.Name, len(r.Strategy.Automaton.States),
					report.MinDuration, report.MaxDuration)
				if len(report.Unreachable) > 0 {
					fmt.Printf("warning: unreachable states: %v\n", report.Unreachable)
				}
				if len(report.Trapped) > 0 {
					fmt.Printf("warning: states that cannot finish: %v\n", report.Trapped)
				}
			}
			if len(runs) > 1 {
				fmt.Printf("%d runs expand from matrix template\n", len(runs))
			}
		case "graph", "estimate":
			// All matrix expansions share one automaton shape, so graphing
			// or estimating the first is representative.
			strategy := runs[0].Strategy
			if len(runs) > 1 {
				fmt.Fprintf(os.Stderr, "bifrost: template expands to %d runs; using %q\n",
					len(runs), strategy.Name)
			}
			if cmd == "graph" {
				fmt.Print(analysis.DOT(strategy))
				break
			}
			d, err := analysis.ExpectedDuration(strategy, analysis.UniformProbabilities(strategy))
			if err != nil {
				return err
			}
			fmt.Printf("expected rollout time (uniform outcomes): %v\n", d)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// watch streams live engine events over SSE until interrupted — or, when a
// strategy name is given, until that run reaches a terminal state.
func watch(client *engine.Client, name string) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if name != "" {
		// Fail fast on typos: the stream filter would otherwise wait
		// silently for a run that does not exist.
		if _, err := client.Get(ctx, name); err != nil {
			return err
		}
	}
	events, stop, err := client.Watch(ctx, name, 64)
	if err != nil {
		return err
	}
	defer stop()
	for ev := range events {
		printEvent(ev)
		if name != "" {
			switch ev.Type {
			case engine.EventCompleted, engine.EventAborted, engine.EventError:
				return nil
			}
		}
	}
	return nil
}

func printEvent(ev engine.Event) {
	fmt.Printf("%s  %-20s %-20s %s %s",
		ev.Time.Format(time.RFC3339), ev.Strategy, ev.Type, ev.State, ev.Detail)
	if v := ev.Verdict; v != nil {
		fmt.Printf("  [%s", v.Decision)
		if v.Detail != "" {
			fmt.Printf(": %s", v.Detail)
		}
		fmt.Print("]")
	}
	fmt.Println()
}

func printStatus(st engine.Status) {
	marker := ""
	if st.Recovered {
		// The run survived an engine restart: it was rebuilt from the run
		// journal and resumed mid-strategy.
		marker = "  [recovered]"
	}
	fmt.Printf("%-24s %-10s current=%-16s transitions=%d delay=%v%s\n",
		st.Strategy, st.State, st.Current, len(st.Path), st.Delay().Round(time.Millisecond), marker)
	for _, f := range st.Fleet {
		fmt.Printf("    fleet %-24s %d/%d replicas at generation %d",
			f.Service, f.Acked, f.Replicas, f.Generation)
		switch {
		case f.Converged:
			fmt.Print("  [converged]")
		case len(f.Lagging) > 0:
			fmt.Printf("  [degraded: %s]", strings.Join(f.Lagging, ", "))
		default:
			fmt.Print("  [degraded]")
		}
		fmt.Println()
	}
	for _, c := range st.Children {
		// The region tree of a hierarchical rollout: one child run per
		// region, each with its own state and quorum verdict.
		region := c.Region
		if region == "" {
			region = c.Name
		}
		fmt.Printf("    region %-20s %-10s phase=%-16s", region, c.State, c.Phase)
		switch {
		case c.Passed:
			fmt.Print("  [passed]")
		case c.Failed:
			fmt.Print("  [failed]")
		}
		fmt.Println()
	}
	for _, c := range st.Checks {
		fmt.Printf("    check %-24s %s  %d/%d ok", c.Name, c.Kind, c.Successes, c.Executions)
		if c.Inconclusive > 0 {
			fmt.Printf("  %d inconclusive", c.Inconclusive)
		}
		if c.LastError != "" {
			fmt.Printf("  last error: %s", c.LastError)
		}
		fmt.Println()
		if v := c.Verdict; v != nil {
			fmt.Printf("      verdict %-8s", v.Decision)
			switch c.Kind {
			case "compare":
				fmt.Printf(" t=%.3f p=%.4f", v.Statistic, v.PValue)
			case "sequential":
				fmt.Printf(" llr=%.3f", v.LLR)
			case "burnrate":
				fmt.Printf(" burn=%.2fx", v.Statistic)
			}
			for _, w := range v.Windows {
				fmt.Printf("  %s[%v]=%.4g (n=%g)", w.Name, w.Window, w.Value, w.Count)
			}
			if v.Detail != "" {
				fmt.Printf("  %s", v.Detail)
			}
			fmt.Println()
		}
	}
}
