package dsl

import (
	"context"
	"fmt"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
)

// compileRoutes parses a phase's routes into dynamic routing configs. Two
// syntaxes are accepted: the structured form (service/weights/shadows) and
// the paper's Listing-2 form (from/to/filters with traffic percentages).
func (pc *phaseCompiler) compileRoutes(m map[string]any, ctx string) []core.RoutingConfig {
	d := pc.d
	raw := d.getSlice(m, "routes", ctx)
	out := make([]core.RoutingConfig, 0, len(raw))
	for i, rv := range raw {
		rctx := ctx + ".routes[" + itoa(i) + "]"
		rm, ok := rv.(map[string]any)
		if !ok {
			d.errf("%s: must be a mapping", rctx)
			continue
		}
		route := d.getMap(rm, "route", rctx)
		if route == nil {
			d.errf("%s: missing route element", rctx)
			continue
		}
		if _, paperForm := route["from"]; paperForm {
			if rc, ok := pc.compilePaperRoute(route, rctx); ok {
				out = append(out, rc)
			}
			continue
		}
		d.unknownKeys(route, rctx, "service", "weights", "sticky", "mode", "header", "shadows")
		rc := core.RoutingConfig{
			Service: d.requireString(route, "service", rctx),
			Weights: d.getWeights(route, "weights", rctx),
			Sticky:  d.getBool(route, "sticky", rctx, false),
			Mode:    core.RouteCookie,
			Header:  d.getString(route, "header", rctx),
		}
		switch mode := d.getString(route, "mode", rctx); mode {
		case "", "cookie":
		case "header":
			rc.Mode = core.RouteHeader
		default:
			d.errf("%s: unknown mode %q (cookie or header)", rctx, mode)
		}
		for j, sv := range d.getSlice(route, "shadows", rctx) {
			sctx := rctx + ".shadows[" + itoa(j) + "]"
			sm, ok := sv.(map[string]any)
			if !ok {
				d.errf("%s: must be a mapping", sctx)
				continue
			}
			d.unknownKeys(sm, sctx, "source", "target", "percent")
			rc.Shadows = append(rc.Shadows, core.ShadowRule{
				Source:  d.getString(sm, "source", sctx),
				Target:  d.requireString(sm, "target", sctx),
				Percent: d.getFloat(sm, "percent", sctx, 100),
			})
		}
		out = append(out, rc)
	}
	return out
}

// compilePaperRoute handles the exact syntax of the paper's Listing 2:
//
//   - route:
//     from: search
//     to: fastSearch
//     filters:
//   - traffic:
//     percentage: 100
//     shadow: true
//     sticky: false
//     intervalTime: 60
//
// from is the service (and its stable version), to is the version that the
// filter's percentage of traffic targets. shadow: true duplicates instead
// of splitting.
func (pc *phaseCompiler) compilePaperRoute(route map[string]any, rctx string) (core.RoutingConfig, bool) {
	d := pc.d
	d.unknownKeys(route, rctx, "from", "to", "filters")
	from := d.requireString(route, "from", rctx)
	to := d.requireString(route, "to", rctx)
	rc := core.RoutingConfig{
		Service: from,
		Mode:    core.RouteCookie,
		Weights: map[string]float64{from: 100},
	}
	filters := d.getSlice(route, "filters", rctx)
	if len(filters) == 0 {
		d.errf("%s: paper-form route needs at least one traffic filter", rctx)
		return rc, false
	}
	for i, fv := range filters {
		fctx := rctx + ".filters[" + itoa(i) + "]"
		fm, ok := fv.(map[string]any)
		if !ok {
			d.errf("%s: must be a mapping", fctx)
			continue
		}
		traffic := d.getMap(fm, "traffic", fctx)
		if traffic == nil {
			d.errf("%s: only traffic filters are supported", fctx)
			continue
		}
		d.unknownKeys(traffic, fctx, "percentage", "shadow", "sticky", "intervalTime")
		pct := d.getFloat(traffic, "percentage", fctx, 100)
		rc.Sticky = d.getBool(traffic, "sticky", fctx, rc.Sticky)
		if d.getBool(traffic, "shadow", fctx, false) {
			rc.Shadows = append(rc.Shadows, core.ShadowRule{
				Source: "*", Target: to, Percent: pct,
			})
			continue
		}
		rc.Weights[from] = 100 - pct
		rc.Weights[to] = pct
	}
	return rc, true
}

// compileChecks parses a phase's checks (metric and exception elements).
func (pc *phaseCompiler) compileChecks(m map[string]any, ctx string) []core.Check {
	d := pc.d
	raw := d.getSlice(m, "checks", ctx)
	out := make([]core.Check, 0, len(raw))
	for i, cv := range raw {
		cctx := ctx + ".checks[" + itoa(i) + "]"
		cm, ok := cv.(map[string]any)
		if !ok {
			d.errf("%s: must be a mapping", cctx)
			continue
		}
		// A check element holds exactly one kind; extra keys (a second
		// kind, or a mis-indented field) are errors so no guard is ever
		// silently dropped.
		var kinds []string
		for _, kind := range KnownCheckKinds() {
			if cm[kind] != nil {
				kinds = append(kinds, kind)
			}
		}
		switch {
		case len(kinds) == 0:
			d.errf("%s: check must be a metric, exception, compare, sequential, burnrate, or changepoint element", cctx)
			continue
		case len(kinds) > 1 || len(cm) > 1:
			d.unknownKeys(cm, cctx, kinds[0])
			continue
		}
		switch kind := kinds[0]; kind {
		case "metric", "exception":
			if c, ok := pc.compileMetricCheck(d.getMap(cm, kind, cctx), cctx+"."+kind, kind == "exception"); ok {
				out = append(out, c)
			}
		default:
			if c, ok := pc.compileVerdictCheck(kind, d.getMap(cm, kind, cctx), cctx+"."+kind); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

func (pc *phaseCompiler) compileMetricCheck(m map[string]any, ctx string, exception bool) (core.Check, bool) {
	d := pc.d
	if m == nil {
		return core.Check{}, false
	}
	d.unknownKeys(m, ctx, "name", "provider", "providers", "query", "intervalTime",
		"intervalLimit", "threshold", "validator", "weight", "fallback",
		"thresholds", "outputs")

	c := core.Check{
		Name:       d.requireString(m, "name", ctx),
		Kind:       core.BasicCheck,
		Interval:   d.getDuration(m, "intervalTime", ctx),
		Executions: d.getInt(m, "intervalLimit", ctx, 1),
		Weight:     d.getFloat(m, "weight", ctx, 0),
	}
	if exception {
		c.Kind = core.ExceptionCheck
		c.Fallback = d.requireString(m, "fallback", ctx)
	}

	query := d.getString(m, "query", ctx)
	validatorSrc := d.requireString(m, "validator", ctx)
	var validator metrics.Validator
	if validatorSrc != "" {
		v, err := metrics.ParseValidator(validatorSrc)
		if err != nil {
			d.errf("%s: %v", ctx, err)
		} else {
			validator = v
		}
	}

	providerName := d.getString(m, "provider", ctx)
	// The paper's Listing-1 nests providers as a list; accept the first.
	if providerName == "" {
		if provs := d.getSlice(m, "providers", ctx); len(provs) > 0 {
			if pm, ok := provs[0].(map[string]any); ok {
				for name, inner := range pm {
					providerName = name
					if im, ok := inner.(map[string]any); ok {
						if q := d.getString(im, "query", ctx); q != "" {
							query = q
						}
						if n := d.getString(im, "name", ctx); n != "" && c.Name == "" {
							c.Name = n
						}
					}
				}
			}
		}
	}
	if providerName == "" {
		providerName = pc.defaultProvider
	}
	querier, ok := pc.providers[providerName]
	if !ok {
		d.errf("%s: unknown metric provider %q", ctx, providerName)
		return core.Check{}, false
	}
	if query == "" {
		d.errf("%s: missing required field %q", ctx, "query")
		return core.Check{}, false
	}
	if validator.IsZero() {
		return core.Check{}, false
	}
	c.Eval = &metricEvaluator{querier: querier, query: query, validator: validator}

	if !exception {
		// Basic-check output mapping. The DSL default follows §4.2.2:
		// one threshold equal to intervalLimit; the check is true only
		// when at least that many executions succeeded.
		if explicit := d.getIntSlice(m, "thresholds", ctx); len(explicit) > 0 {
			c.Thresholds = explicit
			c.Outputs = d.getIntSlice(m, "outputs", ctx)
		} else {
			threshold := d.getInt(m, "threshold", ctx, c.Executions)
			c.Thresholds = []int{threshold - 1}
			c.Outputs = []int{0, 1}
		}
	}
	return c, c.Name != ""
}

// metricEvaluator is the metric evaluating function f_ci of a DSL check: it
// queries the provider and applies the validator, yielding {0, 1}.
type metricEvaluator struct {
	querier   Querier
	query     string
	validator metrics.Validator
}

var _ core.Evaluator = (*metricEvaluator)(nil)

// Evaluate implements core.Evaluator.
func (e *metricEvaluator) Evaluate(ctx context.Context) (bool, error) {
	v, err := e.querier.Query(ctx, e.query)
	if err != nil {
		return false, fmt.Errorf("evaluate %q: %w", e.query, err)
	}
	return e.validator.Apply(v), nil
}

// expandGradual turns a gradual-rollout phase into the chain of automaton
// states the formal model prescribes ("Corresponds to 20 states in the
// model", §5.1.2).
func (pc *phaseCompiler) expandGradual(phase, gradual map[string]any, name, ctx string,
	idx int, rawPhases []any) {

	d := pc.d
	d.unknownKeys(gradual, ctx+".gradual", "service", "stable", "candidate",
		"from", "to", "step", "interval", "sticky")

	service := d.requireString(gradual, "service", ctx+".gradual")
	stable := d.requireString(gradual, "stable", ctx+".gradual")
	candidate := d.requireString(gradual, "candidate", ctx+".gradual")
	fromPct := d.getFloat(gradual, "from", ctx+".gradual", 5)
	toPct := d.getFloat(gradual, "to", ctx+".gradual", 100)
	step := d.getFloat(gradual, "step", ctx+".gradual", 5)
	interval := d.getDuration(gradual, "interval", ctx+".gradual")
	sticky := d.getBool(gradual, "sticky", ctx+".gradual", false)

	if step <= 0 || toPct < fromPct {
		d.errf("%s.gradual: need step > 0 and to ≥ from (got from=%v to=%v step=%v)",
			ctx, fromPct, toPct, step)
		return
	}
	if interval <= 0 {
		d.errf("%s.gradual: missing interval", ctx)
		return
	}

	on := d.getMap(phase, "on", ctx)
	success := d.getString(on, "success", ctx+".on")
	failure := d.getString(on, "failure", ctx+".on")
	if success == "" {
		success = nextPhaseName(d, rawPhases, idx)
	}
	if success == "" {
		d.errf("%s: gradual phase needs on.success or a following phase", ctx)
		return
	}
	checks := pc.compileChecks(phase, ctx)

	// Build one state per traffic step: name-5, name-10, …, name-100. The
	// final step is clamped to the target percentage, so a from/to range
	// that is not a multiple of step still ends exactly at "to".
	var stepStates []core.State
	for pct, done := fromPct, false; !done; pct += step {
		if pct >= toPct-1e-9 {
			pct = toPct
			done = true
		}
		id := fmt.Sprintf("%s-%g", name, pct)
		st := core.State{
			ID:          id,
			Description: fmt.Sprintf("gradual rollout %s=%g%%", candidate, pct),
			Duration:    interval,
			Routing: []core.RoutingConfig{{
				Service: service,
				Weights: map[string]float64{stable: 100 - pct, candidate: pct},
				Sticky:  sticky,
				Mode:    core.RouteCookie,
			}},
			Checks: cloneChecks(checks),
		}
		stepStates = append(stepStates, st)
	}

	for i := range stepStates {
		next := success
		if i+1 < len(stepStates) {
			next = stepStates[i+1].ID
		}
		st := &stepStates[i]
		sum, ok := basicWeightSum(st.Checks)
		if !ok {
			d.errf("%s: gradual checks need integer weights", ctx)
			return
		}
		if failure != "" && sum > 0 {
			st.Thresholds = []int{sum - 1}
			st.Transitions = []string{failure, next}
		} else {
			st.Transitions = []string{next}
		}
	}
	// The first step keeps the phase name as an alias so start/transition
	// references to the phase work.
	if len(stepStates) > 0 {
		alias := stepStates[0]
		alias.ID = name
		pc.states = append(pc.states, alias)
		pc.states = append(pc.states, stepStates[1:]...)
		if len(stepStates) > 1 {
			// Re-point the alias's self-chain: alias transitions to the
			// second step (it already does, copied from stepStates[0]).
			_ = alias
		}
	}
}

func cloneChecks(checks []core.Check) []core.Check {
	out := make([]core.Check, len(checks))
	copy(out, checks)
	for i := range out {
		out[i].Thresholds = append([]int(nil), checks[i].Thresholds...)
		out[i].Outputs = append([]int(nil), checks[i].Outputs...)
	}
	return out
}
