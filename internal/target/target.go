// Package target defines the enactment-target plugin boundary: the small
// interface a backend must implement for the engine to enact routing
// configurations onto it, plus a registry that maps the DSL's per-service
// `target:` kind to an implementation.
//
// The design follows the executor/plugins split: one narrow interface
// (apply a config, report convergence, retire a strategy), many
// self-contained plugins, each unit-tested on its own. The engine's proxy
// fleet delivery is the `proxy` plugin; `flag` pushes rulesets that a
// client-side feature-flag SDK evaluates with no proxy hop; `command`
// shells out declaratively for external control planes.
//
// This package is deliberately tiny and depends only on internal/core and
// internal/clock, so plugins never import the engine and the engine never
// imports a plugin.
package target

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/core"
)

// Well-known target kinds. The registry accepts any name, but the DSL
// validates against KnownKinds so typos are compile errors.
const (
	// KindProxy is the default: routing enacted onto the bifrost HTTP
	// proxy fleet fronting the service.
	KindProxy = "proxy"
	// KindFlag pushes rulesets evaluated client-side by the bifrost/flag
	// SDK — no proxy hop in the data path.
	KindFlag = "flag"
	// KindCommand shells out to a declared argv for external control
	// planes (k8s Services, Envoy xDS bridges, vendor flag systems).
	KindCommand = "command"
)

// KnownKinds returns the target kinds the DSL accepts, sorted.
func KnownKinds() []string {
	return []string{KindCommand, KindFlag, KindProxy}
}

// KindFor resolves a service's declared target kind; services that do not
// declare one enact onto the proxy, preserving pre-registry behavior.
func KindFor(svc core.Service) string {
	if svc.Target == "" {
		return KindProxy
	}
	return svc.Target
}

// Target is one enactment backend. Implementations must be safe for
// concurrent use: the engine applies configs from many runs at once and
// reconciles convergence in the background.
type Target interface {
	// Apply enacts one routing configuration for one service of the
	// strategy, stamped with the engine's monotonic generation.
	Apply(ctx context.Context, s *core.Strategy, state *core.State,
		rc core.RoutingConfig, generation int64) error
	// Convergence runs one observation pass for the strategy and reports
	// per-service convergence. Targets with nothing to observe (fire-and-
	// forget backends like command) return nil.
	Convergence(ctx context.Context, strategy string) []Convergence
	// Retire drops all state held for the strategy (run finished or
	// removed).
	Retire(strategy string)
}

// Convergence is one service's convergence report: how many of the
// target's replicas (proxy replicas, SDK instances, …) carry the current
// generation. Field layout mirrors engine.FleetStatus so reports surface
// through Status.Fleet unchanged.
type Convergence struct {
	Service    string   `json:"service"`
	Generation int64    `json:"generation"`
	Replicas   int      `json:"replicas"`
	Acked      int      `json:"acked"`
	Lagging    []string `json:"lagging,omitempty"`
	Converged  bool     `json:"converged"`
}

// Optional capability interfaces. The engine feature-detects these on a
// registered Target; plugins implement only what they need.

// Settler is implemented by targets that suppress convergence reporting
// while a freshly applied config settles; the engine calls Settled after
// it has published the state entry.
type Settler interface {
	Settled(strategy, service string)
}

// Gate is implemented by targets that can re-check, under their own lock,
// that a generation is still current before a report about it is
// published. WithCurrent runs fn only if generation is the target's
// current settled generation for the service and reports whether it ran —
// closing the filter-to-publish race on stale convergence reports.
type Gate interface {
	WithCurrent(strategy, service string, generation int64, fn func()) bool
}

// Paced is implemented by targets that want a specific reconcile cadence;
// the engine polls Convergence every ReconcileInterval and bounds each
// pass by PassBudget.
type Paced interface {
	ReconcileInterval() time.Duration
	PassBudget() time.Duration
}

// ClockBinder is implemented by targets that keep time (liveness TTLs,
// backoff); the engine hands them its clock so manual-clock tests can
// drive them.
type ClockBinder interface {
	BindClock(clock.Clock)
}

// Registry maps target kinds to implementations. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	targets map[string]Target
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{targets: make(map[string]Target, 4)}
}

// Register adds a target under a kind name. Registering an empty kind,
// a nil target, or a duplicate kind is an error: plugin wiring mistakes
// should fail at startup, not at enactment time.
func (r *Registry) Register(kind string, t Target) error {
	if kind == "" {
		return fmt.Errorf("target: register: empty kind")
	}
	if t == nil {
		return fmt.Errorf("target: register %q: nil target", kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.targets[kind]; dup {
		return fmt.Errorf("target: register %q: already registered", kind)
	}
	r.targets[kind] = t
	return nil
}

// Lookup returns the target registered under kind.
func (r *Registry) Lookup(kind string) (Target, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.targets[kind]
	return t, ok
}

// Kinds returns the registered kind names, sorted.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	kinds := make([]string, 0, len(r.targets))
	for k := range r.targets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// All returns the registered targets in sorted-kind order.
func (r *Registry) All() []Target {
	r.mu.RLock()
	defer r.mu.RUnlock()
	kinds := make([]string, 0, len(r.targets))
	for k := range r.targets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]Target, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, r.targets[k])
	}
	return out
}
