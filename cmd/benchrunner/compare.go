package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// compareBench prints per-metric deltas between two BENCH_*.json files so
// the committed trajectory is diffable in PR review: every numeric leaf of
// the two documents is flattened to a dotted path and compared.
func compareBench(w io.Writer, oldPath, newPath string) error {
	oldVals, err := loadBenchMetrics(oldPath)
	if err != nil {
		return err
	}
	newVals, err := loadBenchMetrics(newPath)
	if err != nil {
		return err
	}

	keys := make([]string, 0, len(oldVals)+len(newVals))
	seen := make(map[string]bool, len(oldVals)+len(newVals))
	for k := range oldVals {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range newVals {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	fmt.Fprintf(w, "%-40s %14s %14s %14s %9s\n", "metric", "old", "new", "delta", "change")
	for _, k := range keys {
		ov, haveOld := oldVals[k]
		nv, haveNew := newVals[k]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%-40s %14s %14.3f %14s %9s\n", k, "-", nv, "-", "new")
		case !haveNew:
			fmt.Fprintf(w, "%-40s %14.3f %14s %14s %9s\n", k, ov, "-", "-", "gone")
		default:
			change := "-"
			if ov != 0 {
				change = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			}
			fmt.Fprintf(w, "%-40s %14.3f %14.3f %+14.3f %9s\n", k, ov, nv, nv-ov, change)
		}
	}
	return nil
}

// loadBenchMetrics reads a bench JSON file and flattens its numeric leaves
// into dotted-path keys ("config.events", "pipelineEventsPerSec", ...).
func loadBenchMetrics(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	flattenNumbers("", doc, out)
	return out, nil
}

func flattenNumbers(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case float64:
		out[prefix] = t
	case map[string]any:
		for k, sub := range t {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenNumbers(key, sub, out)
		}
	case []any:
		for i, sub := range t {
			flattenNumbers(fmt.Sprintf("%s[%d]", prefix, i), sub, out)
		}
	}
}
