module bifrost

go 1.22
