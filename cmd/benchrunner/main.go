// Command benchrunner regenerates every table and figure of the paper's
// evaluation (§5) against the in-process reproduction of the testbed.
//
// Usage:
//
//	benchrunner -experiment all                  # everything, quick timing
//	benchrunner -experiment table1               # Table 1
//	benchrunner -experiment fig6                 # Figure 6 series (CSV)
//	benchrunner -experiment fig7 -counts 1,5,10,20,40
//	benchrunner -experiment fig8                 # same sweep as fig7
//	benchrunner -experiment fig9 -groups 1,5,10,20
//	benchrunner -experiment fig10                # same sweep as fig9
//	benchrunner -experiment bench6 -out BENCH_6.json
//	                                             # federation micro-bench:
//	                                             # ingest, sketch merges,
//	                                             # fleet-window queries
//	benchrunner -experiment bench7 -out BENCH_7.json
//	                                             # flag-vs-proxy data-plane
//	                                             # bench: SDK decisions vs
//	                                             # the proxy HTTP hop
//	benchrunner -experiment bench9 -out BENCH_9.json
//	                                             # event-pipeline macro-bench:
//	                                             # publish→mirror→journal→SSE
//	                                             # events/s, proxy p99 under
//	                                             # live reconfig, ingest rate
//	benchrunner -experiment bench10 -out BENCH_10.json
//	                                             # hierarchical-rollout bench:
//	                                             # sequential vs parallel vs
//	                                             # quorum region wall-time,
//	                                             # blast radius, pipeline rerun
//	benchrunner -compare old.json new.json       # per-metric deltas between
//	                                             # two committed BENCH files
//	benchrunner -compare -tolerance 0.2 old.json new.json
//	                                             # same, but exit non-zero when
//	                                             # a known-direction metric
//	                                             # regresses by more than 20%
//	benchrunner -paper                           # paper-scale durations
//	benchrunner -singlecore                      # GOMAXPROCS=1, like the
//	                                             # paper's n1-standard-1 VMs
//
// Absolute numbers differ from the paper (loopback HTTP servers instead of
// a 12-VM Docker Swarm); the shapes — constant small proxy overhead, dark
// launch amplification, A/B load-splitting, sub-linear engine CPU growth,
// delay inflection past saturation — are the reproduction target. See
// EXPERIMENTS.md for paper-vs-measured values.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bifrost/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "all", "all|table1|fig6|fig7|fig8|fig9|fig10|bench6|bench7|bench9|bench10")
	compare := flag.Bool("compare", false,
		"compare two bench JSON files (benchrunner -compare old.json new.json)")
	tolerance := flag.Float64("tolerance", 0,
		"with -compare: fail (exit non-zero) when a known-direction metric regresses by more than this fraction (0 disables gating)")
	paper := flag.Bool("paper", false, "use the paper's full phase durations (slow)")
	singleCore := flag.Bool("singlecore", false, "run with GOMAXPROCS=1 to mimic the paper's single-core VMs")
	counts := flag.String("counts", "1,5,10,20", "parallel-strategy sweep counts (fig7/fig8)")
	groups := flag.String("groups", "1,5,10", "check-group sweep counts n; 8·n checks (fig9/fig10)")
	rps := flag.Float64("rps", 35, "load-test request rate (fig6/table1)")
	out := flag.String("out", "", "write bench6/bench7 JSON to this file instead of stdout")
	benchScale := flag.Float64("bench-scale", 1,
		"scale factor for bench6/bench7 workload sizes (CI smoke uses e.g. 0.01)")
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) != 2 {
			return fmt.Errorf("-compare needs exactly two files: benchrunner -compare old.json new.json")
		}
		return compareBench(os.Stdout, args[0], args[1], *tolerance)
	}

	if *singleCore {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		fmt.Printf("# GOMAXPROCS=1 (was %d)\n", prev)
	}

	ctx := context.Background()
	plan := experiments.QuickPhases()
	if *paper {
		plan = experiments.PaperPhases()
	}

	switch *experiment {
	case "table1", "fig6":
		t1, err := experiments.RunTable1(ctx, experiments.EndUserConfig{
			Plan: plan, RPS: *rps,
		})
		if err != nil {
			return err
		}
		if *experiment == "table1" {
			t1.Print(os.Stdout)
		} else {
			t1.PrintFigure6(os.Stdout)
		}
		return nil

	case "fig7", "fig8":
		points, err := experiments.RunParallelStrategies(ctx, experiments.ParallelStrategiesConfig{
			Counts: parseInts(*counts),
		})
		if err != nil {
			return err
		}
		experiments.PrintSweep(os.Stdout,
			"Figures 7 & 8: engine CPU utilization and enactment delay vs parallel strategies",
			"strategies", points)
		return nil

	case "fig9", "fig10":
		points, err := experiments.RunParallelChecks(ctx, experiments.ParallelChecksConfig{
			GroupCounts: parseInts(*groups),
		})
		if err != nil {
			return err
		}
		experiments.PrintSweep(os.Stdout,
			"Figures 9 & 10: engine CPU utilization and enactment delay vs parallel checks",
			"checks", points)
		return nil

	case "bench6":
		scale := func(n int) int {
			if v := int(float64(n) * *benchScale); v > 0 {
				return v
			}
			return 1
		}
		res, err := experiments.RunFederationBench(experiments.FederationBenchConfig{
			IngestSamples: scale(1_000_000),
			MergeSketches: scale(2_000),
			SketchSamples: scale(5_000),
			Replicas:      8,
			WindowBuckets: scale(120),
			Queries:       scale(500),
		})
		if err != nil {
			return err
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return res.WriteJSON(w)

	case "bench7":
		scale := func(n int) int {
			if v := int(float64(n) * *benchScale); v > 0 {
				return v
			}
			return 1
		}
		res, err := experiments.RunFlagBench(experiments.FlagBenchConfig{
			Decisions: scale(2_000_000),
			Requests:  scale(5_000),
		})
		if err != nil {
			return err
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return res.WriteJSON(w)

	case "bench10":
		scale := func(n int) int {
			if v := int(float64(n) * *benchScale); v > 0 {
				return v
			}
			return 1
		}
		res, err := experiments.RunBench10(experiments.Bench10Config{
			// Region count and gate cadence stay fixed across scales (the
			// scenario shape is the point); only the per-region schedule
			// length and the pipeline volume shrink for CI smoke.
			Executions:     scale(20),
			PipelineEvents: scale(50_000),
		})
		if err != nil {
			return err
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return res.WriteJSON(w)

	case "bench9":
		scale := func(n int) int {
			if v := int(float64(n) * *benchScale); v > 0 {
				return v
			}
			return 1
		}
		// The proxy load test needs a floor: at 1% scale an 8s run would
		// shrink below the loadgen's dispatch tick.
		dur := time.Duration(float64(8*time.Second) * *benchScale)
		if dur < 500*time.Millisecond {
			dur = 500 * time.Millisecond
		}
		rps := 300 * *benchScale
		if rps < 50 {
			rps = 50
		}
		res, err := experiments.RunBench9(experiments.Bench9Config{
			Events:        scale(50_000),
			Subscribers:   64,
			ProxyRPS:      rps,
			ProxyDuration: dur,
			IngestSamples: scale(1_000_000),
		})
		if err != nil {
			return err
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return res.WriteJSON(w)

	case "all":
		start := time.Now()
		t1, err := experiments.RunTable1(ctx, experiments.EndUserConfig{Plan: plan, RPS: *rps})
		if err != nil {
			return err
		}
		t1.Print(os.Stdout)
		t1.PrintFigure6(os.Stdout)

		p78, err := experiments.RunParallelStrategies(ctx, experiments.ParallelStrategiesConfig{
			Counts: parseInts(*counts),
		})
		if err != nil {
			return err
		}
		experiments.PrintSweep(os.Stdout,
			"Figures 7 & 8: engine CPU utilization and enactment delay vs parallel strategies",
			"strategies", p78)

		p910, err := experiments.RunParallelChecks(ctx, experiments.ParallelChecksConfig{
			GroupCounts: parseInts(*groups),
		})
		if err != nil {
			return err
		}
		experiments.PrintSweep(os.Stdout,
			"Figures 9 & 10: engine CPU utilization and enactment delay vs parallel checks",
			"checks", p910)
		fmt.Printf("# total runtime: %v\n", time.Since(start).Round(time.Second))
		return nil

	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}

func parseInts(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		if v, err := strconv.Atoi(strings.TrimSpace(p)); err == nil && v > 0 {
			out = append(out, v)
		}
	}
	return out
}
