package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/journal"
)

// RecoveryReport summarizes what Recover found in the journal.
type RecoveryReport struct {
	// Resumed are the unfinished runs whose loops are executing again.
	Resumed []*Run
	// Finished counts runs the journal shows as already terminal; they are
	// registered (visible to the API with their durable history) but not
	// resumed — replaying a finished run must never re-fire its side
	// effects.
	Finished int
	// Skipped maps unfinished-but-unrecoverable runs to the reason (no
	// DSL source journaled, or the source no longer compiles).
	Skipped map[string]string
}

// recovered carries a resumed run's journal-derived position into its loop.
type recovered struct {
	// current is the automaton state to re-enter ("" restarts from the
	// automaton's start state: the run was scheduled but never entered one).
	current string
	// routing is the set of routing configurations in force at the crash
	// (latest per service along the executed path). The re-entry applies
	// the ones the re-entered state does not itself declare — routing
	// persists across routeless states, and proxies may have restarted
	// during the downtime.
	routing []core.RoutingConfig
	// elapsed is how long the run had already spent in current before the
	// crash (downtime excluded); the state timer resumes from here instead
	// of restarting the phase.
	elapsed time.Duration
	// paused restores a paused run into its paused wait, with pauseGen as
	// the generation conditional resumes must match.
	paused   bool
	pauseGen int
	// priorActual is the wall time the run had accumulated before the
	// crash, for delay accounting across the restart.
	priorActual time.Duration
}

// Recover replays the engine's journal and resumes every unfinished run:
// same automaton state, elapsed-in-state preserved, pause generation and
// path intact, and the last routing configuration re-applied through the
// Configurator (proxies may have restarted too). It must be called once,
// after New and before any Enact. compile recompiles the journaled strategy
// sources (cmd wiring passes dsl.Compile).
func (e *Engine) Recover(compile CompileFunc) (*RecoveryReport, error) {
	if e.journal == nil {
		return nil, errors.New("engine: Recover requires WithJournal")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	if len(e.runs) > 0 {
		e.mu.Unlock()
		return nil, errors.New("engine: Recover must run before strategies are enacted")
	}
	e.mu.Unlock()

	e.pubMu.Lock()
	snap, snapSeq := e.journal.Snapshot()
	if snap != nil {
		if err := json.Unmarshal(snap, e.mirror); err != nil {
			e.pubMu.Unlock()
			return nil, fmt.Errorf("engine: corrupt journal snapshot: %w", err)
		}
		if e.mirror.Runs == nil {
			e.mirror.Runs = make(map[string]*runMirror, 8)
		}
	}
	e.bus.setSeq(snapSeq)

	// Strategies recompile lazily, once per run; nil means unrecoverable.
	strategies := make(map[string]*core.Strategy)
	compileFor := func(name string) *core.Strategy {
		if s, ok := strategies[name]; ok {
			return s
		}
		var s *core.Strategy
		if rm, ok := e.mirror.Runs[name]; ok && rm.Source != "" && compile != nil {
			if cs, err := compile(rm.Source); err == nil {
				s = cs
			}
		}
		strategies[name] = s
		return s
	}

	maxGen := e.mirror.Generation
	err := e.journal.Replay(func(rec journal.Record) error {
		switch rec.Type {
		case recHeartbeat:
			// Heartbeats share the newest event's seq, so they may sit on
			// (or behind) the snapshot boundary and are always applied:
			// they only push the crash-time estimate forward.
			if rec.Time.After(e.mirror.LastTime) {
				e.mirror.LastTime = rec.Time
			}
		case recSource:
			if rec.Seq <= snapSeq {
				return nil // already reduced into the snapshot
			}
			var sr sourceRecord
			if json.Unmarshal(rec.Data, &sr) == nil {
				e.mirror.setSource(rec.Run, sr.Source)
				delete(strategies, rec.Run) // compile against the new source
			}
		case recEvent:
			if rec.Seq <= snapSeq {
				return nil // already reduced into the snapshot
			}
			var ev Event
			if json.Unmarshal(rec.Data, &ev) != nil {
				return nil // tolerate unknown/garbled records, like a torn tail
			}
			e.mirror.apply(compileFor(ev.Strategy), ev)
			e.bus.restore(ev)
			if ev.Generation > maxGen {
				maxGen = ev.Generation
			}
		}
		return nil
	})
	if err != nil {
		e.pubMu.Unlock()
		return nil, err
	}
	// Retained history may hold routing generations newer than the
	// snapshot counter (snapshot counters only advance at compaction).
	for _, rm := range e.mirror.Runs {
		for _, ev := range rm.Events {
			if ev.Generation > maxGen {
				maxGen = ev.Generation
			}
		}
	}
	if maxGen > e.generation.Load() {
		e.generation.Store(maxGen)
	}
	lastTime := e.mirror.LastTime

	// Snapshot the per-run states and compile every remaining strategy
	// before releasing pubMu; the run loops started below publish events,
	// which mutate the mirror under that lock.
	type pending struct {
		name string
		rm   runMirror
	}
	pendings := make([]pending, 0, len(e.mirror.Runs))
	for name := range e.mirror.Runs {
		// Terminal runs too: Run.Strategy() should work on a replayed
		// finished run whose source is journaled.
		compileFor(name)
	}
	for name, rm := range e.mirror.Runs {
		pendings = append(pendings, pending{name, *rm})
	}
	e.pubMu.Unlock()

	report := &RecoveryReport{Skipped: make(map[string]string)}
	for _, p := range pendings {
		st := p.rm.Status
		st.Path = append([]Transition(nil), st.Path...)
		if st.State.terminal() {
			report.Finished++
			e.registerRun(newFinishedRun(e, strategies[p.name], st))
			continue
		}
		s := strategies[p.name]
		if s == nil {
			reason := "no strategy source journaled (enacted programmatically)"
			if p.rm.Source != "" {
				reason = "journaled strategy source no longer compiles"
			}
			report.Skipped[p.name] = reason
			continue
		}
		var elapsed, prior time.Duration
		if !st.EnteredAt.IsZero() && lastTime.After(st.EnteredAt) {
			elapsed = lastTime.Sub(st.EnteredAt)
		}
		// Active wall time accumulates per life: everything before the
		// last recovery is in PriorActive, plus this life's span up to the
		// newest record — inter-restart downtime never counts.
		anchor, base := st.StartedAt, time.Duration(0)
		if !p.rm.ResumedAt.IsZero() {
			anchor, base = p.rm.ResumedAt, p.rm.PriorActive
		}
		prior = base
		if !anchor.IsZero() && lastTime.After(anchor) {
			prior += lastTime.Sub(anchor)
		}
		st.Recovered = true
		ctx, cancel := context.WithCancel(context.Background())
		r := &Run{
			engine:   e,
			strategy: s,
			cancel:   cancel,
			done:     make(chan struct{}),
			controls: make(chan controlMsg),
			status:   st,
			recov: &recovered{
				current:     st.Current,
				routing:     effectiveRouting(s, st.Path, st.Current),
				elapsed:     elapsed,
				paused:      st.State == RunPaused,
				pauseGen:    st.PauseGen,
				priorActual: prior,
			},
		}
		if !e.registerRun(r) {
			cancel()
			return report, ErrEngineClosed
		}
		report.Resumed = append(report.Resumed, r)
		e.mRecovered.Inc()
		e.mActive.Add(1)
		go func() {
			defer e.wg.Done()
			defer e.mActive.Add(-1)
			r.loop(ctx)
		}()
	}
	return report, nil
}

// effectiveRouting returns the routing configurations in force when the
// run sat in current after taking path: for each service, the config of
// the latest visited state that declared one. Routing persists across
// states that declare none, so recovery must re-apply these — the state
// being re-entered may not mention the services at all.
func effectiveRouting(s *core.Strategy, path []Transition, current string) []core.RoutingConfig {
	if s == nil || current == "" {
		return nil
	}
	visited := make([]string, 0, len(path)+1)
	for _, tr := range path {
		visited = append(visited, tr.From)
	}
	visited = append(visited, current)
	var out []core.RoutingConfig
	seen := make(map[string]bool, 2)
	for i := len(visited) - 1; i >= 0; i-- {
		st, ok := s.Automaton.State(visited[i])
		if !ok {
			continue
		}
		// Within a state too, the last declared config per service wins:
		// enterState applies them in order and later pushes carry higher
		// generations, so walking backwards keeps what was live.
		for j := len(st.Routing) - 1; j >= 0; j-- {
			rc := st.Routing[j]
			if !seen[rc.Service] {
				seen[rc.Service] = true
				out = append(out, rc)
			}
		}
	}
	return out
}

// registerRun inserts a run into the registry; for live runs the waitgroup
// slot is taken under e.mu so Shutdown cannot miss it. Reports false once
// the engine closed.
func (e *Engine) registerRun(r *Run) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.runs[r.status.Strategy] = r
	if !r.Done() {
		e.wg.Add(1)
	}
	return true
}

// newFinishedRun materializes a terminal run from its journaled status so a
// restarted engine still lists it and serves its history. It has no loop;
// every control is rejected with ErrFinished.
func newFinishedRun(e *Engine, s *core.Strategy, st Status) *Run {
	done := make(chan struct{})
	close(done)
	return &Run{
		engine:   e,
		strategy: s,
		cancel:   func() {},
		done:     done,
		controls: make(chan controlMsg),
		status:   st,
	}
}
