// Command shopd launches the case-study e-commerce application of the
// paper's evaluation (§5.1.1) as one process: gateway, frontend, product
// (three versions), search (two versions), auth, document store, metrics
// provider, and two Bifrost proxies — all on loopback ports printed at
// startup, ready for a bifrost-engine to run strategies against.
//
// Usage:
//
//	shopd [-products 40] [-users 25]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"bifrost/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shopd:", err)
		os.Exit(1)
	}
}

func run() error {
	products := flag.Int("products", 40, "catalog size")
	users := flag.Int("users", 25, "seeded user accounts (user-N@example.com / secret)")
	flag.Parse()

	tb, err := experiments.NewTestbed(experiments.TestbedConfig{
		WithProxies: true,
		Products:    *products,
		Users:       *users,
	})
	if err != nil {
		return err
	}
	defer tb.Close()

	log.Println("case-study application deployed:")
	log.Printf("  gateway (entry point):  %s", tb.Gateway.URL())
	log.Printf("  frontend:               %s", tb.Frontend.URL())
	log.Printf("  auth:                   %s", tb.Auth.URL())
	log.Printf("  document store:         %s", tb.DB.URL())
	log.Printf("  metrics provider:       %s", tb.MetricsSrv.URL())
	log.Printf("  product proxy:          %s", tb.ProductProxySrv.URL())
	for v, srv := range tb.ProductVersions {
		log.Printf("    product version %-10s %s", v, srv.URL())
	}
	log.Printf("  search proxy:           %s", tb.SearchProxySrv.URL())
	for v, srv := range tb.SearchVersions {
		log.Printf("    search version %-11s %s", v, srv.URL())
	}
	log.Printf("seeded %d products and %d users", *products, *users)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	return nil
}
