//go:build !race

// Allocation counts differ under the race detector's instrumentation, so
// these regression pins only run in the plain test/CI lanes.

package httpx

import (
	"net/http"
	"testing"
)

// discardStream is a streaming ResponseWriter that throws bytes away: the
// measurement isolates SendRaw's own allocations from any recorder growth.
type discardStream struct{ h http.Header }

func (d *discardStream) Header() http.Header         { return d.h }
func (d *discardStream) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardStream) WriteHeader(int)             {}
func (d *discardStream) Flush()                      {}

// SendRaw is the per-subscriber hot path of the engine's SSE fan-out: one
// call per subscriber per event. After warm-up it must not allocate at all —
// the frame is assembled in the writer's reused scratch buffer.
func TestSendRawZeroAllocs(t *testing.T) {
	w, err := NewSSEWriter(&discardStream{h: make(http.Header)})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(`{"seq":123456,"strategy":"canary-shop","type":"check_executed","time":"2026-01-01T00:00:00Z"}`)
	// Warm-up grows the scratch buffer to its steady-state size.
	if err := w.SendRaw("check_executed", 123456, data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := w.SendRaw("check_executed", 123457, data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("SendRaw allocates %.2f objects per event, want 0", allocs)
	}
}
