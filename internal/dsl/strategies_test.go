package dsl

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bifrost/internal/analysis"
	"bifrost/internal/core"
)

// TestShippedStrategiesCompile guards the YAML files under /strategies: they
// must compile, validate, and pass the structural analyses, so users can
// copy them as starting points.
func TestShippedStrategiesCompile(t *testing.T) {
	dir := filepath.Join("..", "..", "strategies")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read strategies dir: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no shipped strategies")
	}
	for _, e := range entries {
		t.Run(e.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			// CompileAll so matrix templates are covered: every expansion
			// must compile and pass the structural analyses on its own.
			runs, err := CompileAll(string(src))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, run := range runs {
				report, err := analysis.Analyze(run.Strategy)
				if err != nil {
					t.Fatalf("analyze %q: %v", run.Strategy.Name, err)
				}
				if len(report.Unreachable) > 0 {
					t.Errorf("%q: unreachable states: %v", run.Strategy.Name, report.Unreachable)
				}
				if len(report.Trapped) > 0 {
					t.Errorf("%q: trapped states: %v", run.Strategy.Name, report.Trapped)
				}
				if report.MaxDuration <= 0 {
					t.Errorf("%q: max duration = %v", run.Strategy.Name, report.MaxDuration)
				}
			}
		})
	}
}

// TestSLOGuardedCanaryShape pins the statistical-check structure of the
// shipped slo-guarded-canary strategy: the canary phase guarded by a
// burnrate rollback plus a latency compare, and the A/B phase gated by a
// sequential check that can conclude before the 2h timer.
func TestSLOGuardedCanaryShape(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "strategies", "slo-guarded-canary.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compile(string(src))
	if err != nil {
		t.Fatal(err)
	}

	canary, ok := s.Automaton.State("canary")
	if !ok {
		t.Fatal("canary phase missing")
	}
	kinds := map[string]string{}
	for i := range canary.Checks {
		kinds[canary.Checks[i].Name] = canary.Checks[i].Kind.String()
	}
	if kinds["slo-guard"] != "burnrate" || kinds["latency-ab"] != "compare" {
		t.Errorf("canary checks = %v, want burnrate slo-guard + compare latency-ab", kinds)
	}
	for i := range canary.Checks {
		c := &canary.Checks[i]
		if c.Analyze == nil {
			t.Errorf("check %q has no analyzer", c.Name)
		}
		if c.Kind == core.BurnRateCheck && c.Fallback != "rollback" {
			t.Errorf("burnrate fallback = %q, want rollback", c.Fallback)
		}
	}

	ab, ok := s.Automaton.State("abgate")
	if !ok {
		t.Fatal("abgate phase missing")
	}
	if ab.Duration != 2*time.Hour {
		t.Errorf("abgate duration = %v, want 2h", ab.Duration)
	}
	if !ab.Routing[0].Sticky {
		t.Error("A/B phase not sticky")
	}
	var seq *core.Check
	for i := range ab.Checks {
		if ab.Checks[i].Kind == core.SequentialCheck {
			seq = &ab.Checks[i]
		}
	}
	if seq == nil {
		t.Fatal("abgate has no sequential check")
	}
	if seq.Fallback != "rollback" {
		t.Errorf("sequential fallback = %q, want rollback", seq.Fallback)
	}
	if _, ok := seq.Analyze.(core.ResettableAnalyzer); !ok {
		t.Error("sequential analyzer is not resettable")
	}
	if len(s.Automaton.Finals) != 2 {
		t.Errorf("finals = %v, want rollout + rollback", s.Automaton.Finals)
	}
}

// TestFastsearchStrategyMatchesPaperShape pins the key properties of the
// running-example file to the paper's Figure 1: 1% start, growth steps,
// a five-day sticky A/B phase, and two final states.
func TestFastsearchStrategyMatchesPaperShape(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "strategies", "fastsearch.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	start, ok := s.Automaton.State("canary-1")
	if !ok {
		t.Fatal("canary-1 missing")
	}
	if start.Routing[0].Weights["fastSearch"] != 1 {
		t.Errorf("canary share = %v, want 1%%", start.Routing[0].Weights["fastSearch"])
	}
	if start.Duration != 24*time.Hour {
		t.Errorf("canary duration = %v, want 24h", start.Duration)
	}
	ab, ok := s.Automaton.State("abtest")
	if !ok {
		t.Fatal("abtest missing")
	}
	if ab.Duration != 120*time.Hour {
		t.Errorf("A/B duration = %v, want 120h (5 days)", ab.Duration)
	}
	if !ab.Routing[0].Sticky {
		t.Error("A/B phase not sticky")
	}
	if len(s.Automaton.Finals) != 2 {
		t.Errorf("finals = %v, want rollout + fallback", s.Automaton.Finals)
	}
	// Growth steps 5/10/15/20 exist.
	for _, id := range []string{"grow", "grow-10", "grow-15", "grow-20"} {
		if _, ok := s.Automaton.State(id); !ok {
			t.Errorf("growth step %q missing", id)
		}
	}
}
