package metrics

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/httpx"
)

// rawWindowAggregate recomputes a window aggregation by brute force over
// the retained raw samples, the semantics the summary fast path must
// reproduce exactly.
func rawWindowAggregate(s *Store, fn, name string, d time.Duration, at time.Time) (float64, bool) {
	perSeries := s.RangeSamples(name, nil, d, at)
	if len(perSeries) == 0 {
		return 0, false
	}
	switch fn {
	case "rate", "increase":
		var total float64
		for _, samples := range perSeries {
			total += counterIncrease(samples)
		}
		if fn == "rate" {
			return total / d.Seconds(), true
		}
		return total, true
	}
	pool := make([]float64, 0, 64)
	for _, samples := range perSeries {
		for _, sm := range samples {
			pool = append(pool, sm.V)
		}
	}
	var agg string
	switch fn {
	case "avg_over_time":
		agg = "avg"
	case "min_over_time":
		agg = "min"
	case "max_over_time":
		agg = "max"
	case "sum_over_time":
		agg = "sum"
	case "count_over_time":
		agg = "count"
	}
	v, _ := reduce(pool, agg)
	return v, true
}

var windowFns = []string{"increase", "rate", "avg_over_time", "min_over_time",
	"max_over_time", "sum_over_time", "count_over_time"}

// TestWindowAggregateAtRingWrap drives a small ring buffer through many
// wraps and checks, at every step and for several window sizes, that the
// summary-backed aggregation equals the brute-force raw scan — including
// windows whose oldest samples were just evicted mid-window.
func TestWindowAggregateAtRingWrap(t *testing.T) {
	const maxSamples = 32
	s := NewStore(WithMaxSamples(maxSamples), WithSummaryBucket(time.Second))
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)

	var counter float64
	for i := 0; i < 4*maxSamples; i++ {
		// Irregular spacing (200–900ms) so samples do not align with
		// bucket boundaries, plus an occasional counter reset.
		base = base.Add(time.Duration(200+rng.Intn(700)) * time.Millisecond)
		if rng.Intn(29) == 0 {
			counter = rng.Float64() // reset
		} else {
			counter += rng.Float64() * 5
		}
		s.Append("wrap_counter", nil, counter, base)
		s.Append("wrap_gauge", nil, rng.NormFloat64()*10, base)

		if i%7 != 0 {
			continue
		}
		for _, window := range []time.Duration{3 * time.Second, 9 * time.Second, time.Minute} {
			for _, fn := range windowFns {
				for _, metric := range []string{"wrap_counter", "wrap_gauge"} {
					want, ok := rawWindowAggregate(s, fn, metric, window, base)
					got, err := s.WindowAggregate(fn, 0, metric, nil, window, base)
					if !ok {
						if !errors.Is(err, ErrNoData) {
							t.Fatalf("step %d %s(%s[%v]): err = %v, want ErrNoData", i, fn, metric, window, err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d %s(%s[%v]): %v", i, fn, metric, window, err)
					}
					if math.Abs(got-want) > 1e-7*math.Max(1, math.Abs(want)) {
						t.Fatalf("step %d %s(%s[%v]) = %v, raw scan = %v", i, fn, metric, window, got, want)
					}
				}
			}
		}
	}
}

// TestWindowAggregateOutOfOrderFallsBack ensures an out-of-order append
// disables the summaries without breaking window queries.
func TestWindowAggregateOutOfOrderFallsBack(t *testing.T) {
	s := NewStore()
	base := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	s.Append("m", nil, 1, base)
	s.Append("m", nil, 3, base.Add(2*time.Second))
	s.Append("m", nil, 2, base.Add(1*time.Second)) // out of order
	got, err := s.WindowAggregate("sum_over_time", 0, "m", nil, time.Minute, base.Add(3*time.Second))
	if err != nil || got != 6 {
		t.Fatalf("sum_over_time = %v, %v; want 6", got, err)
	}
	got, err = s.WindowAggregate("count_over_time", 0, "m", nil, 1500*time.Millisecond, base.Add(2*time.Second))
	if err != nil || got != 2 {
		t.Fatalf("count_over_time = %v, %v; want 2 (the two newest samples)", got, err)
	}
}

func TestWindowMoments(t *testing.T) {
	s := NewStore()
	base := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	vals := []float64{10, 12, 14, 16, 18}
	for i, v := range vals {
		s.Append("lat", Labels{"version": "a"}, v, base.Add(time.Duration(i)*time.Second))
	}
	m, err := s.WindowMoments("lat", []LabelMatch{{Name: "version", Op: MatchEqual, Value: "a"}},
		time.Minute, base.Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 5 || m.Mean != 14 || m.Min != 10 || m.Max != 18 {
		t.Errorf("moments = %+v", m)
	}
	if math.Abs(m.Variance-10) > 1e-9 { // sample variance of 10,12,14,16,18
		t.Errorf("variance = %v, want 10", m.Variance)
	}
	if _, err := s.WindowMoments("ghost", nil, time.Minute, base); !errors.Is(err, ErrNoData) {
		t.Errorf("ghost err = %v, want ErrNoData", err)
	}
}

// TestWindowMomentsLargeMagnitude guards the Welford/Chan accumulation:
// a series with huge values and tiny spread must yield the spread's
// variance, not floating-point cancellation noise (which a naive
// Σv² − n·mean² would produce, letting a compare check manufacture
// certainty out of rounding error).
func TestWindowMomentsLargeMagnitude(t *testing.T) {
	s := NewStore()
	base := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	// Values around 1e9 with a ±2 spread: exact sample variance is known.
	vals := []float64{1e9 - 2, 1e9 - 1, 1e9, 1e9 + 1, 1e9 + 2}
	for i, v := range vals {
		s.Append("big", nil, v, base.Add(time.Duration(i)*time.Second))
	}
	m, err := s.WindowMoments("big", nil, time.Minute, base.Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Variance-2.5) > 1e-6 { // sample variance of −2..2 is 2.5
		t.Errorf("variance = %v, want 2.5 (no cancellation)", m.Variance)
	}
	if math.Abs(m.Mean-1e9) > 1e-3 {
		t.Errorf("mean = %v, want 1e9", m.Mean)
	}
	// Constant series: variance exactly zero, not negative noise.
	for i := 0; i < 10; i++ {
		s.Append("flat", nil, 123456789.125, base.Add(time.Duration(i)*time.Second))
	}
	m, err = s.WindowMoments("flat", nil, time.Minute, base.Add(10*time.Second))
	if err != nil || m.Variance != 0 {
		t.Errorf("constant series variance = %v, %v; want exactly 0", m.Variance, err)
	}
}

func TestWindowQuantileP2Path(t *testing.T) {
	s := NewStore()
	base := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(3))
	n := 4 * p2ExactThreshold // force the streaming path
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()*5 + 50
		s.Append("lat", nil, vals[i], base.Add(time.Duration(i)*100*time.Millisecond))
	}
	at := base.Add(time.Duration(n) * 100 * time.Millisecond)
	got, err := s.WindowAggregate("quantile_over_time", 0.95, "lat", nil, time.Hour, at)
	if err != nil {
		t.Fatal(err)
	}
	exact := quantile(vals, 0.95)
	if math.Abs(got-exact) > 1.0 {
		t.Errorf("P² p95 = %v, exact = %v", got, exact)
	}
}

func TestStddevAndVarOverTimeQueries(t *testing.T) {
	s := NewStore()
	base := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	for i, v := range []float64{10, 12, 14, 16, 18} {
		s.Append("lat", nil, v, base.Add(time.Duration(i)*time.Second))
	}
	at := base.Add(5 * time.Second)
	// Population variance (÷n), matching Prometheus: deviations of
	// 10,12,14,16,18 from mean 14 are 16,4,0,4,16 → 40/5 = 8.
	va, err := s.Query("var_over_time(lat[1m])", at)
	if err != nil || math.Abs(va-8) > 1e-9 {
		t.Errorf("var_over_time = %v, %v; want 8", va, err)
	}
	sd, err := s.Query("stddev_over_time(lat[1m])", at)
	if err != nil || math.Abs(sd-math.Sqrt(8)) > 1e-9 {
		t.Errorf("stddev_over_time = %v, %v; want √8", sd, err)
	}
}

func TestParseRangeSelector(t *testing.T) {
	name, sel, window, err := ParseRangeSelector(`response_ms{version="b",instance!="x"}[90s]`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "response_ms" || window != 90*time.Second || len(sel) != 2 {
		t.Errorf("parsed %q %v %v", name, sel, window)
	}
	for _, bad := range []string{"", "m", `m{v="x"}`, "m[5s] extra", "rate(m[5s])", "[5s]"} {
		if _, _, _, err := ParseRangeSelector(bad); err == nil {
			t.Errorf("ParseRangeSelector(%q) succeeded", bad)
		}
	}
}

func TestMomentsEndpointAndClient(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC))
	store := NewStore(WithClock(clk))
	for i, v := range []float64{1, 2, 3, 4} {
		store.Append("lat", Labels{"version": "b"}, v, clk.Now().Add(-time.Duration(4-i)*time.Second))
	}
	srv, err := httpx.NewServer("127.0.0.1:0", NewServer(store).Handler())
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())

	c := &Client{BaseURL: srv.URL()}
	m, err := c.Moments(context.Background(), `lat{version="b"}[30s]`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 4 || m.Mean != 2.5 {
		t.Errorf("moments = %+v", m)
	}
	if _, err := c.Moments(context.Background(), `ghost[30s]`); err == nil {
		t.Error("ghost moments succeeded")
	}
	if _, err := c.Moments(context.Background(), `not a selector`); err == nil {
		t.Error("bad selector accepted")
	}
}

// benchStore seeds one series with a wide sample history: the shape of a
// long-running canary whose checks query minutes-wide windows.
func benchStore(b *testing.B, bucket time.Duration) (*Store, time.Time) {
	b.Helper()
	s := NewStore(WithSummaryBucket(bucket))
	base := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	// 100 samples/s — a proxy instrumenting a moderately busy service.
	for i := 0; i < DefaultMaxSamples; i++ {
		base = base.Add(10 * time.Millisecond)
		s.Append("bench_counter", nil, float64(i*2), base)
	}
	return s, base
}

func benchmarkWindowAggregate(b *testing.B, bucket time.Duration) {
	s, at := benchStore(b, bucket)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.WindowAggregate("increase", 0, "bench_counter", nil, time.Minute, at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowAggregateSummaries exercises the bucket-summary fast
// path; BenchmarkWindowAggregateRawScan disables summaries to show what
// the same query costs rescanning raw samples.
func BenchmarkWindowAggregateSummaries(b *testing.B) {
	benchmarkWindowAggregate(b, DefaultSummaryBucket)
}

func BenchmarkWindowAggregateRawScan(b *testing.B) {
	benchmarkWindowAggregate(b, 0)
}

func TestStoreQuerier(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC))
	store := NewStore(WithClock(clk))
	store.Append("errs", nil, 7, clk.Now())
	q := StoreQuerier{Store: store}
	v, err := q.Query(context.Background(), "errs")
	if err != nil || v != 7 {
		t.Fatalf("Query = %v, %v", v, err)
	}
	m, err := q.Moments(context.Background(), "errs[1m]")
	if err != nil || m.Count != 1 || m.Mean != 7 {
		t.Fatalf("Moments = %+v, %v", m, err)
	}
	if _, err := q.Moments(context.Background(), "ghost[1m]"); !errors.Is(err, ErrNoData) {
		t.Errorf("ghost err = %v, want ErrNoData", err)
	}
}
