package dsl

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// matrixTemplate is a 2×2 canary template over the flag target whose name
// references both axes.
const matrixTemplate = `
name: canary-${region}-${cohort}
vars:
  canary-weight: 10
matrix:
  region: [eu-west, us-east]
  cohort: [free, paid]
deployment:
  services:
    - service: shop
      target: flag
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
        - name: canary
          endpoint: 127.0.0.1:9002
strategy:
  start: canary
  phases:
    - phase: canary
      duration: 60s
      routes:
        - route:
            service: shop
            weights:
              stable: 90
              canary: ${canary-weight}
      on:
        success: done
    - phase: done
      routes:
        - route:
            service: shop
            weights: {canary: 100}
`

func TestTemplateMatrixExpansion(t *testing.T) {
	runs, err := CompileAll(matrixTemplate)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("expanded to %d runs, want 4", len(runs))
	}
	// First axis (cohort, sorted) varies slowest; names are deterministic.
	want := []string{
		"canary-eu-west-free", "canary-us-east-free",
		"canary-eu-west-paid", "canary-us-east-paid",
	}
	for i, r := range runs {
		if r.Strategy.Name != want[i] {
			t.Errorf("run %d = %q, want %q", i, r.Strategy.Name, want[i])
		}
		// Whole-string references keep the scalar type: the canary weight
		// must come through as a number, not the string "10".
		w := r.Strategy.Automaton.States[0].Routing[0].Weights["canary"]
		if w != 10 {
			t.Errorf("run %q canary weight = %v, want 10", r.Strategy.Name, w)
		}
		if r.Vars["canary-weight"] != "10" {
			t.Errorf("run %q vars = %v, want canary-weight=10", r.Strategy.Name, r.Vars)
		}
		if r.Vars["region"] == "" || r.Vars["cohort"] == "" {
			t.Errorf("run %q missing axis bindings: %v", r.Strategy.Name, r.Vars)
		}
		// The journaled Source must be standalone: recompiling it alone
		// (what crash recovery does) yields the same concrete run.
		again, err := Compile(r.Source)
		if err != nil {
			t.Fatalf("run %q source does not recompile: %v", r.Strategy.Name, err)
		}
		if again.Name != r.Strategy.Name {
			t.Errorf("recompiled name = %q, want %q", again.Name, r.Strategy.Name)
		}
	}
}

func TestTemplateNameAutoSuffix(t *testing.T) {
	src := strings.Replace(matrixTemplate,
		"name: canary-${region}-${cohort}", "name: product", 1)
	runs, err := CompileAll(src)
	if err != nil {
		t.Fatal(err)
	}
	// Suffix values follow sorted axis order: cohort, then region.
	want := []string{
		"product-free-eu-west", "product-free-us-east",
		"product-paid-eu-west", "product-paid-us-east",
	}
	for i, r := range runs {
		if r.Strategy.Name != want[i] {
			t.Errorf("run %d = %q, want %q", i, r.Strategy.Name, want[i])
		}
	}
}

func TestTemplateVarTransforms(t *testing.T) {
	src := strings.Replace(matrixTemplate, "vars:", `var-transforms:
  - from: region
    match: ^([a-z]+)-.*$
    replace: $1
    to: zone
vars:
  zone-note: zone ${zone}`, 1)
	// Reference the derived variable somewhere substitutable.
	src = strings.Replace(src, "duration: 60s",
		"duration: 60s\n      description: rollout in ${zone}", 1)
	runs, err := CompileAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("expanded to %d runs, want 4", len(runs))
	}
	for _, r := range runs {
		wantZone := strings.SplitN(r.Vars["region"], "-", 2)[0]
		if r.Vars["zone"] != wantZone {
			t.Errorf("run %q zone = %q, want %q", r.Strategy.Name, r.Vars["zone"], wantZone)
		}
		if desc := r.Strategy.Automaton.States[0].Description; desc != "rollout in "+wantZone {
			t.Errorf("run %q description = %q", r.Strategy.Name, desc)
		}
	}
}

func TestTemplateWithoutMatrixExpandsOnce(t *testing.T) {
	src := strings.Replace(matrixTemplate, "name: canary-${region}-${cohort}", "name: canary", 1)
	src = strings.Replace(src, "matrix:\n  region: [eu-west, us-east]\n  cohort: [free, paid]\n", "", 1)
	runs, err := CompileAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Strategy.Name != "canary" {
		t.Fatalf("runs = %+v, want one run named canary", runs)
	}
	if runs[0].Vars["canary-weight"] != "10" {
		t.Errorf("vars = %v", runs[0].Vars)
	}
}

func TestNonTemplatePreservesSource(t *testing.T) {
	c, _ := testCompiler()
	runs, err := c.CompileAll(productStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("expanded to %d runs, want 1", len(runs))
	}
	if runs[0].Source != productStrategy {
		t.Error("non-template source was rewritten")
	}
	if runs[0].Vars != nil {
		t.Errorf("non-template vars = %v, want nil", runs[0].Vars)
	}
}

func TestCompileRejectsMultiRunTemplate(t *testing.T) {
	_, err := Compile(matrixTemplate)
	if err == nil {
		t.Fatal("Compile accepted a 4-run template")
	}
	if !strings.Contains(err.Error(), "CompileAll") {
		t.Errorf("error does not point at CompileAll: %v", err)
	}
}

// templateErr compiles src expecting a CompileError mentioning every want
// fragment (positions included).
func templateErr(t *testing.T, src string, want ...string) {
	t.Helper()
	_, err := CompileAll(src)
	if err == nil {
		t.Fatal("broken template compiled")
	}
	var cerr *CompileError
	if !errors.As(err, &cerr) {
		t.Fatalf("error is %T, want *CompileError: %v", err, err)
	}
	for _, w := range want {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("error %q lacks %q", err, w)
		}
	}
}

func TestTemplateEmptyMatrix(t *testing.T) {
	src := strings.Replace(matrixTemplate,
		"matrix:\n  region: [eu-west, us-east]\n  cohort: [free, paid]", "matrix: {}", 1)
	templateErr(t, src, "matrix: declared but empty")
}

func TestTemplateEmptyAxis(t *testing.T) {
	src := strings.Replace(matrixTemplate, "cohort: [free, paid]", "cohort: []", 1)
	templateErr(t, src, "matrix.cohort", "no values")
}

func TestTemplateDuplicateRunNames(t *testing.T) {
	// The name references only one of two axes, so expansions collide.
	src := strings.Replace(matrixTemplate,
		"name: canary-${region}-${cohort}", "name: canary-${region}", 1)
	templateErr(t, src, "both expand to name", `"canary-eu-west"`)
}

func TestTemplateUndefinedVariable(t *testing.T) {
	src := strings.Replace(matrixTemplate, "duration: 60s",
		"duration: 60s\n      description: ${no-such-var}", 1)
	templateErr(t, src, "undefined variable ${no-such-var}", "description")
}

func TestTemplateTransformCollision(t *testing.T) {
	src := strings.Replace(matrixTemplate, "vars:", `var-transforms:
  - from: region
    match: .*
    replace: x
    to: cohort
vars:`, 1)
	templateErr(t, src, "var-transforms[0]", `"cohort" collides`)
}

func TestTemplateTransformFromUndefined(t *testing.T) {
	src := strings.Replace(matrixTemplate, "vars:", `var-transforms:
  - from: ghost
    match: .*
    replace: x
    to: zone
vars:`, 1)
	templateErr(t, src, "var-transforms[0]", `undefined variable "ghost"`)
}

func TestTemplateTransformBadPattern(t *testing.T) {
	src := strings.Replace(matrixTemplate, "vars:", `var-transforms:
  - from: region
    match: "(["
    replace: x
    to: zone
vars:`, 1)
	templateErr(t, src, "var-transforms[0]", "bad match pattern")
}

func TestTemplateAxisCollidesWithVar(t *testing.T) {
	src := strings.Replace(matrixTemplate, "canary-weight: 10",
		"canary-weight: 10\n  region: eu", 1)
	templateErr(t, src, "matrix.region", "collides with vars.region")
}

func TestTemplateNonScalarVar(t *testing.T) {
	src := strings.Replace(matrixTemplate, "canary-weight: 10", "canary-weight: [10]", 1)
	templateErr(t, src, "vars.canary-weight", "scalar")
}

func TestTemplateExpansionCap(t *testing.T) {
	// 17×17 = 289 combinations exceeds the 256-run limit.
	vals := make([]string, 17)
	for n := range vals {
		vals[n] = fmt.Sprintf("v%d", n)
	}
	axis := strings.Join(vals, ", ")
	src := strings.Replace(matrixTemplate,
		"  region: [eu-west, us-east]\n  cohort: [free, paid]",
		"  region: ["+axis+"]\n  cohort: ["+axis+"]", 1)
	templateErr(t, src, "289 runs", "limit 256")
}

func TestTargetKindValidation(t *testing.T) {
	cases := []struct {
		name, patch, want string
	}{
		{"unknown kind", "target: carrier-pigeon", `unknown target kind "carrier-pigeon"`},
		{"command without argv", "target: command", "requires a command argv"},
		{"command argv on flag", "target: flag\n      command: [deploy.sh]", "only valid with target: command"},
		{"flag with proxy", "target: flag\n      proxy: 127.0.0.1:8081", "routes client-side"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := strings.Replace(matrixTemplate, "target: flag", tc.patch, 1)
			templateErr(t, src, tc.want)
		})
	}
}
