package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// decoder navigates the untyped tree the yaml package produces, collecting
// every problem instead of stopping at the first, so strategy authors get a
// complete report.
type decoder struct {
	problems []string
}

func (d *decoder) errf(format string, args ...any) {
	d.problems = append(d.problems, fmt.Sprintf(format, args...))
}

func (d *decoder) err() error {
	if len(d.problems) == 0 {
		return nil
	}
	return &CompileError{Problems: append([]string(nil), d.problems...)}
}

// CompileError aggregates all DSL compilation problems.
type CompileError struct {
	Problems []string
}

// Error implements the error interface.
func (e *CompileError) Error() string {
	return fmt.Sprintf("dsl: %d problem(s): %s", len(e.Problems),
		strings.Join(e.Problems, "; "))
}

func (d *decoder) getMap(m map[string]any, key, ctx string) map[string]any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	mm, ok := v.(map[string]any)
	if !ok {
		d.errf("%s: %q must be a mapping, got %T", ctx, key, v)
		return nil
	}
	return mm
}

func (d *decoder) getSlice(m map[string]any, key, ctx string) []any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	s, ok := v.([]any)
	if !ok {
		d.errf("%s: %q must be a sequence, got %T", ctx, key, v)
		return nil
	}
	return s
}

func (d *decoder) getString(m map[string]any, key, ctx string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s: %q must be a string, got %T", ctx, key, v)
		return ""
	}
	return s
}

func (d *decoder) requireString(m map[string]any, key, ctx string) string {
	s := d.getString(m, key, ctx)
	if s == "" {
		if _, present := m[key]; !present {
			d.errf("%s: missing required field %q", ctx, key)
		}
	}
	return s
}

func (d *decoder) getBool(m map[string]any, key, ctx string, def bool) bool {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	b, ok := v.(bool)
	if !ok {
		d.errf("%s: %q must be a boolean, got %T", ctx, key, v)
		return def
	}
	return b
}

func (d *decoder) getInt(m map[string]any, key, ctx string, def int) int {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch t := v.(type) {
	case int64:
		return int(t)
	case float64:
		if t == float64(int64(t)) {
			return int(t)
		}
	}
	d.errf("%s: %q must be an integer, got %v", ctx, key, v)
	return def
}

func (d *decoder) getFloat(m map[string]any, key, ctx string, def float64) float64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch t := v.(type) {
	case int64:
		return float64(t)
	case float64:
		return t
	}
	d.errf("%s: %q must be a number, got %T", ctx, key, v)
	return def
}

// getDuration accepts either a bare number (seconds, matching the paper's
// "intervalTime: 5") or a Go duration string ("500ms", "2m").
func (d *decoder) getDuration(m map[string]any, key, ctx string) time.Duration {
	v, ok := m[key]
	if !ok || v == nil {
		return 0
	}
	switch t := v.(type) {
	case int64:
		return time.Duration(t) * time.Second
	case float64:
		return time.Duration(t * float64(time.Second))
	case string:
		dur, err := time.ParseDuration(t)
		if err != nil {
			d.errf("%s: bad duration %q for %q: %v", ctx, t, key, err)
			return 0
		}
		return dur
	default:
		d.errf("%s: %q must be seconds or a duration string, got %T", ctx, key, v)
		return 0
	}
}

func (d *decoder) getWeights(m map[string]any, key, ctx string) map[string]float64 {
	raw := d.getMap(m, key, ctx)
	if raw == nil {
		return nil
	}
	out := make(map[string]float64, len(raw))
	for name, v := range raw {
		switch t := v.(type) {
		case int64:
			out[name] = float64(t)
		case float64:
			out[name] = t
		default:
			d.errf("%s: weight for %q must be a number, got %T", ctx, name, v)
		}
	}
	return out
}

func (d *decoder) getIntSlice(m map[string]any, key, ctx string) []int {
	raw := d.getSlice(m, key, ctx)
	if raw == nil {
		return nil
	}
	out := make([]int, 0, len(raw))
	for i, v := range raw {
		n, ok := v.(int64)
		if !ok {
			d.errf("%s: %q[%d] must be an integer, got %T", ctx, key, i, v)
			continue
		}
		out = append(out, int(n))
	}
	return out
}

func (d *decoder) getStringSlice(m map[string]any, key, ctx string) []string {
	raw := d.getSlice(m, key, ctx)
	if raw == nil {
		return nil
	}
	out := make([]string, 0, len(raw))
	for i, v := range raw {
		s, ok := v.(string)
		if !ok {
			d.errf("%s: %q[%d] must be a string, got %T", ctx, key, i, v)
			continue
		}
		out = append(out, s)
	}
	return out
}

// unknownKeys reports fields not in the allowed set, catching typos early.
func (d *decoder) unknownKeys(m map[string]any, ctx string, allowed ...string) {
	ok := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		ok[a] = true
	}
	for k := range m {
		if !ok[k] {
			d.errf("%s: unknown field %q (allowed: %s)", ctx, k, strings.Join(allowed, ", "))
		}
	}
}

func itoa(i int) string { return strconv.Itoa(i) }
