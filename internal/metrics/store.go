package metrics

import (
	"errors"
	"sort"
	"sync"
	"time"

	"bifrost/internal/clock"
)

// DefaultMaxSamples bounds the ring buffer per series. At one sample per
// second 8192 samples cover roughly 2¼ hours of history, comfortably more
// than any check window in the evaluation; deployments with longer
// windows or denser sampling raise it with WithMaxSamples (or the metrics
// server's -max-samples flag).
const DefaultMaxSamples = 8192

// DefaultStaleness is how far back an instant query looks for the latest
// sample of a series before considering it stale.
const DefaultStaleness = 5 * time.Minute

// ErrNoData is returned by queries that match no fresh samples. The engine
// counts such checks as failed and surfaces the error in status output.
var ErrNoData = errors.New("metrics: no data for query")

// Sample is one observation of a series.
type Sample struct {
	T time.Time
	V float64
}

// Store is the time-series database at the heart of the metrics provider.
// It is safe for concurrent use.
type Store struct {
	mu          sync.RWMutex
	series      map[string]*series // key: name + "\x00" + labels.Key()
	maxSamples  int
	staleness   time.Duration
	bucketWidth time.Duration
	clk         clock.Clock
	// fed tracks delta-batch sequence numbers per (replica, incarnation)
	// so re-delivered batches are idempotent (see federate.go).
	fed map[string]*fedCursor
}

type series struct {
	name   string
	labels Labels
	// ring buffer of samples in append order
	buf   []Sample
	start int // index of oldest sample once the ring is full
	// ordered is true while appends arrive in chronological order; only
	// then are the pre-aggregated bucket summaries maintained and the
	// binary-search window scans valid.
	ordered bool
	// buckets is the pre-aggregation ring (see summary.go), bounded by
	// the same maxSamples (at most one bucket per sample).
	buckets []bucket
	bstart  int
	// remote marks a federated series (see federate.go): it holds no raw
	// samples — only shipped bucket summaries, kept as a start-sorted
	// slice in buckets (bstart stays 0) — and is queried bucket-granular.
	remote bool
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithMaxSamples bounds each series' retained history.
func WithMaxSamples(n int) StoreOption {
	return func(s *Store) { s.maxSamples = n }
}

// WithStaleness sets the instant-query staleness window.
func WithStaleness(d time.Duration) StoreOption {
	return func(s *Store) { s.staleness = d }
}

// WithClock injects the clock used for relative windows.
func WithClock(c clock.Clock) StoreOption {
	return func(s *Store) { s.clk = c }
}

// WithSummaryBucket sets the width of the per-series pre-aggregation
// buckets window queries are answered from (see DefaultSummaryBucket).
// Zero or negative disables summaries; every window query then rescans
// raw samples.
func WithSummaryBucket(d time.Duration) StoreOption {
	return func(s *Store) { s.bucketWidth = d }
}

// NewStore creates an empty time-series store.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		series:      make(map[string]*series, 64),
		maxSamples:  DefaultMaxSamples,
		staleness:   DefaultStaleness,
		bucketWidth: DefaultSummaryBucket,
		clk:         clock.Real{},
		fed:         make(map[string]*fedCursor),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Append records a sample for the series identified by name and labels.
func (s *Store) Append(name string, labels Labels, v float64, t time.Time) {
	key := name + "\x00" + labels.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[key]
	if !ok {
		sr = &series{
			name:    name,
			labels:  labels.Clone(),
			buf:     make([]Sample, 0, 64),
			ordered: true,
		}
		s.series[key] = sr
	}
	sr.add(Sample{T: t, V: v}, s.maxSamples, s.bucketWidth)
}

// add appends the sample to the raw ring and folds it into the bucket
// summaries.
func (sr *series) add(sm Sample, maxSamples int, bucketWidth time.Duration) {
	if n := sr.len(); n > 0 && sm.T.Before(sr.at(n-1).T) {
		sr.ordered = false
	}
	sr.append(sm, maxSamples)
	if bucketWidth > 0 {
		sr.summarize(sm, bucketWidth, maxSamples)
	}
}

func (sr *series) append(sm Sample, maxSamples int) {
	if len(sr.buf) < maxSamples {
		sr.buf = append(sr.buf, sm)
		return
	}
	// Ring is full: overwrite the oldest slot.
	sr.buf[sr.start] = sm
	sr.start = (sr.start + 1) % len(sr.buf)
}

// at returns the i-th oldest valid sample.
func (sr *series) at(i int) Sample {
	return sr.buf[(sr.start+i)%len(sr.buf)]
}

func (sr *series) len() int { return len(sr.buf) }

// latestBefore returns the most recent sample at or before t, if any.
// Federated series answer from their buckets' last observed value.
func (sr *series) latestBefore(t time.Time) (Sample, bool) {
	if sr.remote {
		return sr.remoteLatest(t)
	}
	for i := sr.len() - 1; i >= 0; i-- {
		sm := sr.at(i)
		if !sm.T.After(t) {
			return sm, true
		}
	}
	return Sample{}, false
}

// window returns the samples with from < T ≤ to in chronological order.
func (sr *series) window(from, to time.Time) []Sample {
	if sr.ordered {
		lo := sr.searchTime(from.Add(time.Nanosecond))
		hi := sr.searchTime(to.Add(time.Nanosecond))
		if lo >= hi {
			return nil
		}
		out := make([]Sample, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, sr.at(i))
		}
		return out
	}
	out := make([]Sample, 0, 16)
	for i := 0; i < sr.len(); i++ {
		sm := sr.at(i)
		if sm.T.After(from) && !sm.T.After(to) {
			out = append(out, sm)
		}
	}
	return out
}

// SeriesCount returns the number of distinct series in the store.
func (s *Store) SeriesCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series)
}

// SeriesNames returns the sorted distinct metric names.
func (s *Store) SeriesNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool, len(s.series))
	for _, sr := range s.series {
		seen[sr.name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// selectSeries returns the series matching name and selector.
func (s *Store) selectSeries(name string, selector []LabelMatch) []*series {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*series
	for _, sr := range s.series {
		if sr.name == name && sr.labels.Matches(selector) {
			out = append(out, sr)
		}
	}
	return out
}

// InstantValue evaluates an instant vector selector at time t and reduces
// it with the given aggregation (default sum).
func (s *Store) InstantValue(name string, selector []LabelMatch, agg string, at time.Time) (float64, error) {
	matched := s.selectSeries(name, selector)
	vals := make([]float64, 0, len(matched))
	s.mu.RLock()
	for _, sr := range matched {
		if sm, ok := sr.latestBefore(at); ok && at.Sub(sm.T) <= s.staleness {
			vals = append(vals, sm.V)
		}
	}
	s.mu.RUnlock()
	if len(vals) == 0 {
		return 0, ErrNoData
	}
	return reduce(vals, agg)
}

// RangeSamples pools the samples of every matching series over (at-d, at].
func (s *Store) RangeSamples(name string, selector []LabelMatch, d time.Duration, at time.Time) [][]Sample {
	matched := s.selectSeries(name, selector)
	out := make([][]Sample, 0, len(matched))
	s.mu.RLock()
	for _, sr := range matched {
		w := sr.window(at.Add(-d), at)
		if len(w) > 0 {
			out = append(out, w)
		}
	}
	s.mu.RUnlock()
	return out
}

func reduce(vals []float64, agg string) (float64, error) {
	switch agg {
	case "", "sum":
		var t float64
		for _, v := range vals {
			t += v
		}
		return t, nil
	case "avg":
		var t float64
		for _, v := range vals {
			t += v
		}
		return t / float64(len(vals)), nil
	case "min":
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case "max":
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case "count":
		return float64(len(vals)), nil
	default:
		return 0, errors.New("metrics: unknown aggregation " + agg)
	}
}
