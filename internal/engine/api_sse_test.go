package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/httpx"
)

// readStreamEvents opens the SSE endpoint (optionally resuming with
// Last-Event-ID) and collects events until stopAt matches or the timeout
// hits.
func readStreamEvents(t *testing.T, url string, lastID int64,
	stopAt func(Event) bool, timeout time.Duration) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
	}
	resp, err := httpx.StreamClient.Do(req)
	if err != nil {
		t.Fatalf("stream request: %v", err)
	}
	defer resp.Body.Close()
	var out []Event
	_ = httpx.ReadSSE(resp.Body, func(se httpx.SSEEvent) error {
		var ev Event
		if json.Unmarshal(se.Data, &ev) != nil {
			return nil
		}
		out = append(out, ev)
		if stopAt(ev) {
			return context.Canceled // ends the read, not an assertion failure
		}
		return nil
	})
	return out
}

func runQuick(t *testing.T, eng *Engine, name string) Status {
	t.Helper()
	s := canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 3)
	s.Name = name
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	return waitDone(t, run)
}

// TestSSEResumeWithLastEventID reconnects mid-history and must receive
// exactly the events after the presented id — no misses, no repeats.
func TestSSEResumeWithLastEventID(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	srv := httptest.NewServer(NewAPI(eng, nil).Handler())
	defer srv.Close()

	runQuick(t, eng, "quick-resume")
	all := eng.RecentEvents(0)
	if len(all) < 5 {
		t.Fatalf("only %d events buffered", len(all))
	}
	mid := all[2].Seq
	last := all[len(all)-1].Seq

	got := readStreamEvents(t, srv.URL+"/api/v2/events/stream", mid,
		func(ev Event) bool { return ev.Seq >= last }, 5*time.Second)

	want := all[3:]
	if len(got) != len(want) {
		t.Fatalf("resumed stream delivered %d events, want %d (got %+v)",
			len(got), len(want), got)
	}
	for i := range want {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("event %d: seq %d, want %d", i, got[i].Seq, want[i].Seq)
		}
		if got[i].Type == EventEventsDropped {
			t.Fatalf("unexpected drop marker with a fully retained gap")
		}
	}
}

// TestSSEDropMarkerWhenGapExceedsRetention shrinks the replay ring so the
// reconnect gap cannot be replayed; the stream must say so explicitly.
func TestSSEDropMarkerWhenGapExceedsRetention(t *testing.T) {
	eng := New(WithEventRingSize(4))
	defer eng.Shutdown()
	srv := httptest.NewServer(NewAPI(eng, nil).Handler())
	defer srv.Close()

	runQuick(t, eng, "quick-drop") // publishes far more than 4 events
	retained := eng.RecentEvents(0)
	if len(retained) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(retained))
	}
	last := retained[len(retained)-1].Seq

	got := readStreamEvents(t, srv.URL+"/api/v2/events/stream", 1,
		func(ev Event) bool { return ev.Seq >= last }, 5*time.Second)

	if len(got) == 0 || got[0].Type != EventEventsDropped {
		t.Fatalf("first frame = %+v, want an events_dropped marker", got)
	}
	if len(got) != 1+len(retained) {
		t.Fatalf("got %d frames, want marker + %d retained events", len(got), len(retained))
	}
	for i, ev := range got[1:] {
		if ev.Seq != retained[i].Seq {
			t.Fatalf("frame %d: seq %d, want %d", i+1, ev.Seq, retained[i].Seq)
		}
	}
}

// TestSSESequenceResetDetected: a client resuming with a Last-Event-ID
// above the engine's current sequence (the engine restarted without its
// journal) must get an explicit reset marker and then live events — not a
// permanently silent stream discarding everything below the stale id.
func TestSSESequenceResetDetected(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	srv := httptest.NewServer(NewAPI(eng, nil).Handler())
	defer srv.Close()

	runQuick(t, eng, "pre-reset")

	go func() {
		time.Sleep(100 * time.Millisecond)
		s := canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 3)
		s.Name = "post-reset"
		if run, err := eng.Enact(s); err == nil {
			run.Wait(context.Background())
		}
	}()

	got := readStreamEvents(t, srv.URL+"/api/v2/events/stream", 99999,
		func(ev Event) bool {
			return ev.Type == EventCompleted && ev.Strategy == "post-reset"
		}, 10*time.Second)

	if len(got) == 0 || got[0].Type != EventEventsDropped {
		t.Fatalf("first frame = %+v, want a sequence-reset events_dropped marker", got)
	}
	var sawPost bool
	for _, ev := range got {
		if ev.Strategy == "post-reset" && ev.Type == EventCompleted {
			sawPost = true
		}
	}
	if !sawPost {
		t.Fatal("live events after the reset marker never arrived")
	}
}

// TestRunEventsSurviveGlobalRingEviction: one noisy run must not be able to
// evict another run's history (the old implementation filtered the shared
// global ring).
func TestRunEventsSurviveGlobalRingEviction(t *testing.T) {
	eng := New(WithEventRingSize(8))
	defer eng.Shutdown()

	runQuick(t, eng, "quiet")
	quiet := eng.RunEvents("quiet", 0)
	if len(quiet) == 0 {
		t.Fatal("no history for quiet run")
	}

	runQuick(t, eng, "noisy") // floods the 8-slot global ring

	after := eng.RunEvents("quiet", 0)
	if len(after) != len(quiet) {
		t.Fatalf("quiet run history shrank from %d to %d after noisy run",
			len(quiet), len(after))
	}
	var sawCompleted bool
	for _, ev := range after {
		if ev.Type == EventCompleted {
			sawCompleted = true
		}
	}
	if !sawCompleted {
		t.Error("quiet run's completion no longer in its history")
	}
}

// TestWatchRidesThroughServerRestart breaks the HTTP stream under an active
// Client.Watch, publishes events while it is down, and requires the watcher
// to see every one of them after its automatic Last-Event-ID reconnect.
func TestWatchRidesThroughServerRestart(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	handler := NewAPI(eng, nil).Handler()

	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	srv1 := &http.Server{Handler: handler}
	go srv1.Serve(l1)

	client := &Client{BaseURL: "http://" + addr}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	events, stop, err := client.Watch(ctx, "", 0)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer stop()

	runQuick(t, eng, "before-restart")
	awaitType := func(name string, typ EventType) {
		t.Helper()
		for ev := range events {
			if ev.Strategy == name && ev.Type == typ {
				return
			}
		}
		t.Fatalf("stream closed before %s/%s", name, typ)
	}
	awaitType("before-restart", EventCompleted)

	// Take the listener down; the in-flight stream breaks.
	srv1.Close()

	// Events published while the watcher is disconnected.
	runQuick(t, eng, "during-outage")

	// Bring the API back on the same address; Watch reconnects with
	// Last-Event-ID and replays the outage.
	var l2 net.Listener
	for i := 0; i < 50; i++ {
		if l2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	srv2 := &http.Server{Handler: handler}
	go srv2.Serve(l2)
	defer srv2.Close()

	var outage []Event
	for ev := range events {
		if ev.Strategy == "during-outage" {
			outage = append(outage, ev)
		}
		if ev.Type == EventCompleted && ev.Strategy == "during-outage" {
			break
		}
	}
	types := map[EventType]int{}
	for _, ev := range outage {
		types[ev.Type]++
	}
	if types[EventCompleted] != 1 || types[EventTransition] == 0 || types[EventStateEntered] == 0 {
		t.Fatalf("outage events incomplete after reconnect: %v", types)
	}
	for i := 1; i < len(outage); i++ {
		if outage[i].Seq <= outage[i-1].Seq {
			t.Fatalf("replayed outage events out of order: %+v", outage)
		}
	}
}

// TestSSEStreamBackfillsSlowSubscriberDrops forces the bus to drop on the
// stream's subscriber channel and requires the handler to backfill the gap
// from the ring before sending newer events.
func TestSSEStreamBackfillsSlowSubscriberDrops(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	srv := httptest.NewServer(NewAPI(eng, nil).Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/api/v2/events/stream", nil)
	resp, err := httpx.StreamClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Publish a burst far larger than the subscriber buffer (256) while
	// the reader sleeps: the channel must drop, the stream must recover.
	const runs = 4
	for i := 0; i < runs; i++ {
		runQuick(t, eng, fmt.Sprintf("burst-%d", i))
	}
	time.Sleep(50 * time.Millisecond)
	lastSeq := eng.RecentEvents(1)[0].Seq

	var got []Event
	_ = httpx.ReadSSE(resp.Body, func(se httpx.SSEEvent) error {
		var ev Event
		if json.Unmarshal(se.Data, &ev) != nil {
			return nil
		}
		got = append(got, ev)
		if ev.Seq >= lastSeq {
			return context.Canceled
		}
		return nil
	})
	if len(got) == 0 {
		t.Fatal("no events received")
	}
	// Continuity: every gap must be either absent or covered by an
	// explicit drop marker (with a 1024-slot ring and ~a few hundred
	// events, everything should replay without markers).
	prev := int64(0)
	for _, ev := range got {
		if ev.Type == EventEventsDropped {
			prev = ev.Seq
			continue
		}
		if prev > 0 && ev.Seq != prev+1 {
			t.Fatalf("silent gap in stream: %d then %d", prev, ev.Seq)
		}
		prev = ev.Seq
	}
}
