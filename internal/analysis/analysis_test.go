package analysis

import (
	"strings"
	"testing"
	"time"

	"bifrost/internal/core"
)

func TestAnalyzeRunningExampleClean(t *testing.T) {
	s := core.RunningExample(time.Hour)
	r, err := Analyze(s)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(r.Unreachable) != 0 {
		t.Errorf("unreachable = %v", r.Unreachable)
	}
	if len(r.Trapped) != 0 {
		t.Errorf("trapped = %v", r.Trapped)
	}
	// Shortest path: a(1 day) → g. Longest acyclic: a,b,c,d (1 day each)
	// + e (5 days) → 9 days.
	day := 24 * time.Hour
	if r.MinDuration != day {
		t.Errorf("min = %v, want %v", r.MinDuration, day)
	}
	if r.MaxDuration != 9*day {
		t.Errorf("max = %v, want %v", r.MaxDuration, 9*day)
	}
}

func TestAnalyzeFindsUnreachableAndTrapped(t *testing.T) {
	s := &core.Strategy{
		Name: "broken-ish",
		Services: []core.Service{{
			Name:     "s",
			Versions: []core.Version{{Name: "v", Endpoint: "h:1"}},
		}},
		Automaton: core.Automaton{
			Start:  "a",
			Finals: []string{"end"},
			States: []core.State{
				{ID: "a", Duration: time.Second, Transitions: []string{"end"}},
				{ID: "end"},
				// orphan is never referenced.
				{ID: "orphan", Duration: time.Second, Transitions: []string{"end"}},
				// spin can only reach itself → trapped, but unreachable too.
				{ID: "spin", Duration: time.Second, Transitions: []string{"spin"}},
			},
		},
	}
	r, err := Analyze(s)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(r.Unreachable) != 2 {
		t.Errorf("unreachable = %v", r.Unreachable)
	}
}

func TestAnalyzeTrappedReachable(t *testing.T) {
	s := &core.Strategy{
		Name: "trap",
		Services: []core.Service{{
			Name:     "s",
			Versions: []core.Version{{Name: "v", Endpoint: "h:1"}},
		}},
		Automaton: core.Automaton{
			Start:  "a",
			Finals: []string{"end"},
			States: []core.State{
				{ID: "a", Duration: time.Second, Thresholds: []int{0},
					Transitions: []string{"pit", "end"}},
				{ID: "pit", Duration: time.Second, Transitions: []string{"pit2"}},
				{ID: "pit2", Duration: time.Second, Transitions: []string{"pit"}},
				{ID: "end"},
			},
		},
	}
	r, err := Analyze(s)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(r.Trapped) != 2 {
		t.Errorf("trapped = %v, want [pit pit2]", r.Trapped)
	}
	if !r.HasCycle {
		t.Error("cycle not detected")
	}
}

func TestExpectedDurationDeterministicChain(t *testing.T) {
	s := &core.Strategy{
		Name: "chain",
		Services: []core.Service{{
			Name:     "s",
			Versions: []core.Version{{Name: "v", Endpoint: "h:1"}},
		}},
		Automaton: core.Automaton{
			Start:  "a",
			Finals: []string{"c"},
			States: []core.State{
				{ID: "a", Duration: 10 * time.Second, Transitions: []string{"b"}},
				{ID: "b", Duration: 20 * time.Second, Transitions: []string{"c"}},
				{ID: "c"},
			},
		},
	}
	d, err := ExpectedDuration(s, UniformProbabilities(s))
	if err != nil {
		t.Fatalf("ExpectedDuration: %v", err)
	}
	if d != 30*time.Second {
		t.Errorf("expected = %v, want 30s", d)
	}
}

func TestExpectedDurationSelfLoop(t *testing.T) {
	// State re-executes with probability 1/2: expected visits = 2 →
	// expected duration = 2 × 10s.
	s := &core.Strategy{
		Name: "loop",
		Services: []core.Service{{
			Name:     "s",
			Versions: []core.Version{{Name: "v", Endpoint: "h:1"}},
		}},
		Automaton: core.Automaton{
			Start:  "a",
			Finals: []string{"end"},
			States: []core.State{
				{ID: "a", Duration: 10 * time.Second, Thresholds: []int{0},
					Transitions: []string{"a", "end"}},
				{ID: "end"},
			},
		},
	}
	d, err := ExpectedDuration(s, Probabilities{"a": {0.5, 0.5}})
	if err != nil {
		t.Fatalf("ExpectedDuration: %v", err)
	}
	if d < 19*time.Second || d > 21*time.Second {
		t.Errorf("expected = %v, want ≈ 20s", d)
	}
}

func TestExpectedDurationRunningExample(t *testing.T) {
	s := core.RunningExample(time.Hour)
	d, err := ExpectedDuration(s, UniformProbabilities(s))
	if err != nil {
		t.Fatalf("ExpectedDuration: %v", err)
	}
	day := 24 * time.Hour
	// Must lie within the acyclic bounds (1 to 9 days).
	if d < day || d > 9*day {
		t.Errorf("expected = %v, outside [1d, 9d]", d)
	}
}

func TestExpectedDurationMissingProbabilities(t *testing.T) {
	s := core.RunningExample(time.Hour)
	if _, err := ExpectedDuration(s, Probabilities{}); err == nil {
		t.Error("missing probabilities accepted")
	}
}

func TestDOTOutput(t *testing.T) {
	s := core.RunningExample(time.Hour)
	dot := DOT(s)
	for _, want := range []string{
		`digraph "fastsearch-rollout"`,
		`"a" -> "b"`,
		`"b" -> "c"`,
		`"f" [shape=doublecircle`,
		`"g" [shape=doublecircle`,
		`style=dashed`,  // exception edge
		`label="<=3"`,   // threshold range label
		`label="(3,4]"`, // middle range of state b
		`label=">4"`,    // top range of state b
		`"_start" -> "a"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	if _, err := Analyze(&core.Strategy{Name: "x"}); err == nil {
		t.Error("invalid strategy analyzed")
	}
	if _, err := ExpectedDuration(&core.Strategy{Name: "x"}, nil); err == nil {
		t.Error("invalid strategy estimated")
	}
}
