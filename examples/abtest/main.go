// A/B test with sticky sessions and a statistically evaluated winner.
//
// Two implementations of a checkout endpoint convert at different rates.
// A Bifrost proxy splits traffic 50/50 with sticky cookie sessions (the
// same client always hits the same variant); after the experiment window,
// the conversion counts are compared with a two-proportion z-test and the
// winner is rolled out.
//
//	go run ./examples/abtest
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/cookiejar"
	"sync/atomic"
	"time"

	"bifrost"
	"bifrost/internal/abtest"
	"bifrost/internal/httpx"
)

type variant struct {
	name       string
	conversion float64
	trials     atomic.Int64
	successes  atomic.Int64
	srv        *httpx.Server
}

func newVariant(name string, conversion float64, seed int64) (*variant, error) {
	v := &variant{name: name, conversion: conversion}
	rng := rand.New(rand.NewSource(seed))
	srv, err := httpx.NewServer("127.0.0.1:0", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			v.trials.Add(1)
			if rng.Float64() < v.conversion {
				v.successes.Add(1)
				fmt.Fprintln(w, "purchase complete")
				return
			}
			fmt.Fprintln(w, "cart abandoned")
		}))
	if err != nil {
		return nil, err
	}
	srv.Start()
	v.srv = srv
	return v, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	a, err := newVariant("checkoutA", 0.18, 1)
	if err != nil {
		return err
	}
	b, err := newVariant("checkoutB", 0.11, 2)
	if err != nil {
		return err
	}
	defer a.srv.Shutdown(context.Background())
	defer b.srv.Shutdown(context.Background())

	yaml := fmt.Sprintf(`
name: checkout-abtest
deployment:
  services:
    - service: checkout
      versions:
        - name: checkoutA
          endpoint: %s
        - name: checkoutB
          endpoint: %s
strategy:
  phases:
    - phase: experiment
      description: sticky 50/50 split
      duration: 4s
      routes:
        - route:
            service: checkout
            weights: {checkoutA: 50, checkoutB: 50}
            sticky: true
      on:
        success: hold
    - phase: hold
      routes:
        - route:
            service: checkout
            weights: {checkoutA: 50, checkoutB: 50}
            sticky: true
`, a.srv.URL(), b.srv.URL())

	strategy, err := bifrost.CompileStrategy(yaml)
	if err != nil {
		return err
	}
	proxy, err := bifrost.NewProxy("checkout", bifrost.ProxyConfig{})
	if err != nil {
		return err
	}
	defer proxy.Close()
	front, err := httpx.NewServer("127.0.0.1:0", proxy)
	if err != nil {
		return err
	}
	front.Start()
	defer front.Shutdown(context.Background())

	local := bifrost.NewLocalProxies()
	local.Register("checkout", proxy)
	eng := bifrost.NewEngine(bifrost.WithLocalProxies(local))
	defer eng.Shutdown()

	enacted, err := eng.Enact(strategy)
	if err != nil {
		return err
	}

	// Simulate 300 users, each with a cookie jar (sticky sessions) and a
	// handful of checkout attempts.
	for u := 0; u < 300; u++ {
		jar, jerr := cookiejar.New(nil)
		if jerr != nil {
			return jerr
		}
		client := &http.Client{Jar: jar, Timeout: 5 * time.Second}
		served := ""
		for i := 0; i < 4; i++ {
			resp, rerr := client.Get(front.URL() + "/checkout")
			if rerr != nil {
				continue
			}
			version := resp.Header.Get("X-Bifrost-Version")
			resp.Body.Close()
			if served == "" {
				served = version
			} else if served != version {
				return fmt.Errorf("sticky session violated: %s then %s", served, version)
			}
		}
	}

	verdict, err := abtest.Proportions(
		int(a.successes.Load()), int(a.trials.Load()),
		int(b.successes.Load()), int(b.trials.Load()),
		0.05,
	)
	if err != nil {
		return err
	}
	fmt.Printf("A: %d/%d conversions   B: %d/%d conversions\n",
		a.successes.Load(), a.trials.Load(), b.successes.Load(), b.trials.Load())
	fmt.Printf("verdict: %s\n", verdict)

	// Roll out the winner (or keep the split on a tie).
	winner, winnerURL := "checkoutA", a.srv.URL()
	if verdict.Winner == "B" {
		winner, winnerURL = "checkoutB", b.srv.URL()
	}
	_ = enacted.Strategy() // the strategy object remains inspectable
	fmt.Printf("rolling out %s to 100%%\n", winner)
	if err := eng.Abort(strategy.Name); err != nil {
		return err
	}
	return proxy.SetConfig(bifrost.ProxyConfig{
		Service: "checkout", Generation: 1 << 30,
		Backends: []bifrost.Backend{
			{Version: winner, URL: winnerURL, Weight: 1},
		},
	})
}
